"""SLA-violation metrics — Fig 1c.

§V-D2: "We also propose to report query latency bands at, e.g., 1-second
or 10-second intervals throughout execution. Each query latency band
represents the number of completed queries within the interval
(throughput), split into two categories depending on whether the query
finished within the allotted Service-Level Agreement (SLA) time."

The SLA threshold "should ideally be determined based on a baseline
system's query latency statistics on the same hardware and workload
distribution" — :func:`calibrate_sla` implements exactly that. The
"single-value metric for the adjustment speed ... as the sum of query
times above the SLA threshold over the first N queries after a
distribution change" is :func:`adjustment_speed`.

All kernels are vectorized over the run's columnar query log: band
boundaries come from the shared :mod:`repro.metrics._buckets` edge grid
(the same one ``RunResult.throughput_series`` uses), so band totals and
throughput counts agree bucket-for-bucket on runs of any length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.metrics._buckets import GridCounts, time_edges


@dataclass(frozen=True)
class LatencyBand:
    """One interval of Fig 1c.

    Attributes:
        start: Interval start time.
        within_sla: Queries completed in the interval within the SLA.
        violated: Queries completed in the interval over the SLA.
    """

    start: float
    within_sla: int
    violated: int

    @property
    def total(self) -> int:
        """Total completions in the interval."""
        return self.within_sla + self.violated

    @property
    def violation_rate(self) -> float:
        """Fraction of completions over the SLA (0 when idle)."""
        return self.violated / self.total if self.total else 0.0


def calibrate_sla(
    baseline: RunResult, percentile: float = 99.0, headroom: float = 1.5
) -> float:
    """SLA threshold from a baseline run's latency statistics.

    Args:
        baseline: A run of the baseline system on the same scenario.
        percentile: Latency percentile anchoring the threshold.
        headroom: Multiplier on the anchor (SLAs allow slack).
    """
    latencies = baseline.latencies()
    if latencies.size == 0:
        raise ConfigurationError("baseline run has no queries")
    return float(np.percentile(latencies, percentile) * headroom)


def latency_bands(
    result: RunResult, sla: float, interval: float = 1.0
) -> List[LatencyBand]:
    """Fig 1c's bands: per-interval within/violated counts."""
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    if sla <= 0:
        raise ConfigurationError("sla must be > 0")
    cols = result.columns
    edges = time_edges(result.horizon, interval)
    if edges.size < 2:
        return []
    total, _ = np.histogram(cols.completions, bins=edges)
    over, _ = np.histogram(cols.completions[cols.latencies > sla], bins=edges)
    return [
        LatencyBand(start=start, within_sla=int(n - v), violated=int(v))
        for start, n, v in zip(edges[:-1].tolist(), total, over)
    ]


def multi_latency_bands(
    result: RunResult,
    thresholds: Sequence[float],
    interval: float = 1.0,
) -> List[Tuple[float, List[int]]]:
    """Multi-band variant (the paper's green-yellow-orange-red idea).

    ``thresholds`` must be ascending; each interval yields
    ``len(thresholds) + 1`` counts: completions with latency in
    [0, t0), [t0, t1), ..., [t_last, inf).
    """
    ts = list(thresholds)
    if ts != sorted(ts) or any(t <= 0 for t in ts):
        raise ConfigurationError("thresholds must be positive and ascending")
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    cols = result.columns
    edges = time_edges(result.horizon, interval)
    if edges.size < 2:
        return []
    latency_edges = np.asarray([0.0] + ts + [np.inf])
    grid, _, _ = np.histogram2d(
        cols.completions, cols.latencies, bins=(edges, latency_edges)
    )
    return [
        (start, row.astype(int).tolist())
        for start, row in zip(edges[:-1].tolist(), grid)
    ]


def adjustment_speed(
    result: RunResult,
    change_time: float,
    n_queries: int,
    sla: float,
) -> float:
    """Sum of over-SLA latency across the first N queries after a change.

    Lower is better: 0 means the system absorbed the change without any
    SLA impact on the next ``n_queries`` arrivals. Units: seconds.
    """
    if n_queries < 1:
        raise ConfigurationError("n_queries must be >= 1")
    cols = result.columns
    order = np.argsort(cols.arrivals, kind="stable")
    first = np.searchsorted(cols.arrivals[order], change_time, side="left")
    selected = order[first : first + n_queries]
    over = np.maximum(0.0, cols.latencies[selected] - sla)
    return float(over.sum())


# -- streaming accumulators ----------------------------------------------------------


class OnlineLatencyBands:
    """Streaming :func:`latency_bands` (Fig 1c) — bit-identical.

    Two :class:`~repro.metrics._buckets.GridCounts` on the shared edge
    grid: one folds every completion, the other only the over-SLA ones;
    finalize reproduces the offline bands' integer counts exactly.
    """

    name = "sla"

    def __init__(self, sla: float, interval: float = 1.0) -> None:
        """Split ``interval``-second bands at the ``sla`` threshold."""
        if interval <= 0:
            raise ConfigurationError("interval must be > 0")
        if sla <= 0:
            raise ConfigurationError("sla must be > 0")
        self.sla = float(sla)
        self.interval = float(interval)
        self._total = GridCounts(self.interval)
        self._over = GridCounts(self.interval)

    def fold(self, block) -> None:
        """Fold one completed block (completions + latencies)."""
        self._total.fold_sorted(block.completions_sorted)
        violated = block.completions[block.latencies > self.sla]
        if violated.size:
            self._over.fold_sorted(np.sort(violated))

    def merge(self, other: "OnlineLatencyBands") -> "OnlineLatencyBands":
        """Absorb another shard's band counters (bit-exact)."""
        if other.sla != self.sla or other.interval != self.interval:
            raise ConfigurationError(
                "cannot merge OnlineLatencyBands with different parameters"
            )
        self._total.merge(other._total)
        self._over.merge(other._over)
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        return {
            "sla": self.sla,
            "interval": self.interval,
            "total": self._total.state_dict(),
            "over": self._over.state_dict(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineLatencyBands":
        """Rebuild the accumulator from a :meth:`state_dict` payload."""
        accumulator = cls(state["sla"], interval=state["interval"])
        accumulator._total = GridCounts.from_state(state["total"])
        accumulator._over = GridCounts.from_state(state["over"])
        return accumulator

    def bands(self, horizon: float) -> List[LatencyBand]:
        """:func:`latency_bands`'s output for the folded stream."""
        edges = time_edges(horizon, self.interval)
        if edges.size < 2:
            return []
        total = self._total.counts_on(edges)
        over = self._over.counts_on(edges)
        return [
            LatencyBand(start=start, within_sla=int(n - v), violated=int(v))
            for start, n, v in zip(edges[:-1].tolist(), total, over)
        ]

    def finalize(self, horizon: float) -> dict:
        """JSON-ready payload: ``[start, within, violated]`` rows."""
        return {
            "sla": self.sla,
            "interval": self.interval,
            "bands": [
                [band.start, band.within_sla, band.violated]
                for band in self.bands(horizon)
            ],
        }


class OnlineAdjustmentSpeed:
    """Streaming :func:`adjustment_speed` — bit-identical.

    Buffers the latencies of the first ``n_queries`` arrivals at or
    after the change (blocks stream past in arrival order, so the
    selection matches the offline stable argsort exactly) and runs the
    same ``max(0, latency - sla).sum()`` on the identical array. The
    buffer is bounded by ``n_queries`` — a user parameter, not the run
    length — so memory stays constant.
    """

    name = "adjustment_speed"

    def __init__(self, change_time: float, n_queries: int, sla: float) -> None:
        """Watch the first ``n_queries`` arrivals after ``change_time``."""
        if n_queries < 1:
            raise ConfigurationError("n_queries must be >= 1")
        self.change_time = float(change_time)
        self.n_queries = int(n_queries)
        self.sla = float(sla)
        self._chunks: List[np.ndarray] = []
        self._remaining = self.n_queries

    def fold(self, block) -> None:
        """Fold one completed block (arrivals + latencies, in order)."""
        if self._remaining <= 0:
            return
        arrivals = block.arrivals
        first = int(np.searchsorted(arrivals, self.change_time, side="left"))
        if first >= arrivals.size:
            return
        take = block.latencies[first : first + self._remaining]
        self._chunks.append(np.array(take, dtype=np.float64))
        self._remaining -= int(take.size)

    def merge(self, other: "OnlineAdjustmentSpeed") -> "OnlineAdjustmentSpeed":
        """Absorb a later shard's buffered latencies (bit-exact).

        Shards must merge in stream (arrival) order: the combined
        buffer is then the same first-``n_queries`` selection the
        unsharded fold makes, truncated identically.
        """
        if (
            other.change_time != self.change_time
            or other.n_queries != self.n_queries
            or other.sla != self.sla
        ):
            raise ConfigurationError(
                "cannot merge OnlineAdjustmentSpeed with different parameters"
            )
        for chunk in other._chunks:
            if self._remaining <= 0:
                break
            take = np.asarray(chunk[: self._remaining], dtype=np.float64)
            if take.size:
                self._chunks.append(np.array(take))
                self._remaining -= int(take.size)
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        latencies = (
            np.concatenate(self._chunks).tolist() if self._chunks else []
        )
        return {
            "change_time": self.change_time,
            "n_queries": self.n_queries,
            "sla": self.sla,
            "latencies": latencies,
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineAdjustmentSpeed":
        """Rebuild the accumulator from a :meth:`state_dict` payload."""
        accumulator = cls(
            state["change_time"], state["n_queries"], state["sla"]
        )
        latencies = np.asarray(state["latencies"], dtype=np.float64)
        if latencies.size:
            accumulator._chunks.append(latencies)
            accumulator._remaining -= int(latencies.size)
        return accumulator

    def value(self) -> float:
        """:func:`adjustment_speed`'s answer for the folded stream."""
        if not self._chunks:
            return 0.0
        latencies = (
            self._chunks[0]
            if len(self._chunks) == 1
            else np.concatenate(self._chunks)
        )
        over = np.maximum(0.0, latencies - self.sla)
        return float(over.sum())

    def finalize(self, horizon: float) -> dict:
        """JSON-ready payload: parameters and the summed over-SLA mass."""
        return {
            "change_time": self.change_time,
            "n_queries": self.n_queries,
            "sla": self.sla,
            "value": self.value(),
        }
