"""Descriptive statistics: the box plots of Fig 1a.

§V-D1: "instead of only reporting the average throughput, the benchmark
should report descriptive statistics (e.g., using a box plot) to
adequately capture the specialization and adaptation capabilities."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values``."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot take a percentile of no data")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary with Tukey whiskers and outliers.

    Attributes:
        minimum / maximum: Extremes of the data.
        q1 / median / q3: Quartiles.
        whisker_low / whisker_high: Last data points within 1.5 IQR of
            the box (classic Tukey whiskers).
        outliers: Values beyond the whiskers.
        mean: Arithmetic mean (the number traditional benchmarks report
            — kept for contrast).
        count: Sample size.
    """

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: List[float]
    mean: float
    count: int

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    @property
    def dispersion(self) -> float:
        """IQR relative to the median (0 when the median is 0)."""
        return self.iqr / self.median if self.median else 0.0

    def row(self) -> dict:
        """Flat dict for CSV export."""
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "whisker_low": self.whisker_low,
            "whisker_high": self.whisker_high,
            "outliers": len(self.outliers),
            "mean": self.mean,
            "count": self.count,
        }


class RunningStats:
    """Single-pass count/mean/variance/min/max (Chan-Welford merging).

    The streaming pipeline's descriptive summary: folds value blocks
    without retaining them. Counts, minima, and maxima are exact; the
    mean and variance use the numerically stable parallel-merge update,
    so they are deterministic for a given block sequence and agree with
    the batch ``np.mean`` / ``np.std`` to float tolerance (the summation
    trees differ — see DESIGN.md §9).
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        """Start empty (count 0, infinite extremes)."""
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = np.inf
        self.maximum = -np.inf

    def update(self, values: np.ndarray) -> None:
        """Fold one block of values."""
        values = np.asarray(values, dtype=np.float64)
        n = int(values.size)
        if n == 0:
            return
        b_mean = float(values.mean())
        b_m2 = float(((values - b_mean) ** 2).sum())
        if self.count == 0:
            self.count, self.mean, self._m2 = n, b_mean, b_m2
        else:
            total = self.count + n
            delta = b_mean - self.mean
            self.mean += delta * n / total
            self._m2 += b_m2 + delta * delta * self.count * n / total
            self.count = total
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Absorb another instance (Chan parallel combine).

        Counts and extremes stay exact; mean/variance combine with the
        same stable update :meth:`update` uses, so a sharded merge is
        deterministic and agrees with the sequential fold to float
        tolerance (the combination trees differ).
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
        else:
            total = self.count + other.count
            delta = other.mean - self.mean
            self.mean += delta * other.count / total
            self._m2 += (
                other._m2 + delta * delta * self.count * other.count / total
            )
            self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "m2": self._m2,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RunningStats":
        """Rebuild running stats from a :meth:`state_dict` payload."""
        stats = cls()
        stats.count = int(state["count"])
        stats.mean = float(state["mean"])
        stats._m2 = float(state["m2"])
        if state.get("min") is not None:
            stats.minimum = float(state["min"])
            stats.maximum = float(state["max"])
        return stats

    @property
    def variance(self) -> float:
        """Population variance of everything folded (0 when empty)."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation (0 when empty)."""
        return float(np.sqrt(self.variance))

    def summary(self) -> dict:
        """JSON-ready summary row."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


class OnlineLatencyStats:
    """Streaming latency summary over a run's completed blocks."""

    name = "latency"

    def __init__(self) -> None:
        """Start with empty running stats."""
        self._stats = RunningStats()

    def fold(self, block) -> None:
        """Fold one completed block's latencies."""
        self._stats.update(block.latencies)

    def merge(self, other: "OnlineLatencyStats") -> "OnlineLatencyStats":
        """Absorb another shard's latency stats (Chan combine)."""
        self._stats.merge(other._stats)
        return self

    def state_dict(self) -> dict:
        """JSON-ready snapshot (see :meth:`from_state`)."""
        return {"stats": self._stats.state_dict()}

    @classmethod
    def from_state(cls, state: dict) -> "OnlineLatencyStats":
        """Rebuild the accumulator from a :meth:`state_dict` payload."""
        accumulator = cls()
        accumulator._stats = RunningStats.from_state(state["stats"])
        return accumulator

    def finalize(self, horizon: float) -> dict:
        """JSON-ready payload: the :class:`RunningStats` summary."""
        return self._stats.summary()


def box_stats(values: Sequence[float]) -> BoxStats:
    """Compute :class:`BoxStats` for ``values``.

    Raises:
        ConfigurationError: On empty input.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot summarize no data")
    q1, median, q3 = (float(np.percentile(arr, q)) for q in (25, 50, 75))
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inside = arr[(arr >= low_fence) & (arr <= high_fence)]
    whisker_low = float(inside.min()) if inside.size else float(arr.min())
    whisker_high = float(inside.max()) if inside.size else float(arr.max())
    outliers = sorted(float(v) for v in arr[(arr < low_fence) | (arr > high_fence)])
    return BoxStats(
        minimum=float(arr.min()),
        q1=q1,
        median=median,
        q3=q3,
        maximum=float(arr.max()),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
        mean=float(arr.mean()),
        count=int(arr.size),
    )
