"""Scenario (de)serialization: benchmark definitions as shareable JSON.

§IV of the paper demands that "benchmark results remain comparable
across many deployments"; that starts with the *scenario definition*
being an exchangeable artifact rather than Python code. Every
distribution, drift model, arrival process, and workload spec already
exposes ``describe()`` (a JSON-friendly dict); this module provides the
inverse — ``*_from_dict`` factories — plus whole-scenario round-trips:

>>> payload = scenario_to_dict(scenario)        # JSON-ready
>>> clone = scenario_from_dict(payload, initial_keys=dataset.keys)
>>> clone.fingerprint() == scenario.fingerprint()
True

Dataset keys are not embedded (they can be huge and are regenerable from
``build_dataset(name, n, seed)``); pass them back at load time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.driver import DriverConfig
from repro.core.hardware import CPU, GPU, TPU
from repro.core.phases import TrainingPhase
from repro.core.results import RunResult
from repro.core.scenario import Scenario, Segment
from repro.core.streaming import ShardSpec, StreamingRunSummary
from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.observability import Trace
from repro.workloads.distributions import (
    Distribution,
    HotspotDistribution,
    LognormalDistribution,
    MixtureDistribution,
    NormalDistribution,
    PiecewiseDistribution,
    UniformDistribution,
    ZipfDistribution,
)
from repro.workloads.drift import (
    AbruptDrift,
    DriftFactor,
    DriftModel,
    GradualDrift,
    GrowingSkewDrift,
    NoDrift,
    RotatingHotspotDrift,
)
from repro.workloads.generators import KVOperation, MixSchedule, OperationMix, WorkloadSpec
from repro.workloads.patterns import (
    ArrivalProcess,
    BurstyArrivals,
    CompositeArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    RampArrivals,
)

_HARDWARE = {"cpu": CPU, "gpu": GPU, "tpu": TPU}


def distribution_from_dict(payload: Dict[str, Any]) -> Distribution:
    """Rebuild a distribution from its ``describe()`` payload."""
    kind = payload.get("kind")
    low, high = payload.get("low", 0.0), payload.get("high", 1.0)
    if kind == "uniform":
        return UniformDistribution(low, high)
    if kind == "zipf":
        return ZipfDistribution(
            low, high, theta=payload["theta"], n_items=payload["n_items"]
        )
    if kind == "normal":
        return NormalDistribution(low, high, mean=payload["mean"],
                                  std=payload["std"])
    if kind == "lognormal":
        return LognormalDistribution(low, high, mu=payload["mu"],
                                     sigma=payload["sigma"])
    if kind == "hotspot":
        return HotspotDistribution(
            low,
            high,
            hot_start=payload["hot_start"],
            hot_width=payload["hot_width"],
            hot_fraction=payload["hot_fraction"],
        )
    if kind == "piecewise":
        return PiecewiseDistribution(low, high, payload["weights"])
    if kind == "mixture":
        return MixtureDistribution(
            [distribution_from_dict(c) for c in payload["components"]],
            payload["weights"],
        )
    raise ConfigurationError(f"unknown distribution kind {kind!r}")


def drift_from_dict(payload: Dict[str, Any]) -> DriftModel:
    """Rebuild a drift model from its ``describe()`` payload."""
    kind = payload.get("kind")
    if kind == "NoDrift":
        return NoDrift(distribution_from_dict(payload["distribution"]))
    if kind == "AbruptDrift":
        return AbruptDrift(
            [distribution_from_dict(d) for d in payload["distributions"]],
            payload["change_times"],
        )
    if kind == "GradualDrift":
        return GradualDrift(
            before=distribution_from_dict(payload["before"]),
            after=distribution_from_dict(payload["after"]),
            start=payload["start"],
            duration=payload["duration"],
        )
    if kind == "RotatingHotspotDrift":
        return RotatingHotspotDrift(
            low=payload["low"],
            high=payload["high"],
            hot_width=payload["hot_width"],
            period=payload["period"],
            hot_fraction=payload["hot_fraction"],
        )
    if kind == "GrowingSkewDrift":
        return GrowingSkewDrift(
            low=payload.get("low", 0.0),
            high=payload.get("high", 1.0),
            theta_start=payload["theta_start"],
            theta_end=payload["theta_end"],
            duration=payload["duration"],
        )
    if kind == "DriftFactor":
        return DriftFactor(
            base=drift_from_dict(payload["base"]),
            target=drift_from_dict(payload["target"]),
            factor=payload["factor"],
        )
    raise ConfigurationError(f"unknown drift kind {kind!r}")


def arrivals_from_dict(payload: Dict[str, Any]) -> ArrivalProcess:
    """Rebuild an arrival process from its ``describe()`` payload."""
    kind = payload.get("kind")
    if kind == "ConstantArrivals":
        return ConstantArrivals(payload["rate"])
    if kind == "DiurnalArrivals":
        return DiurnalArrivals(
            base=payload["base"],
            amplitude=payload["amplitude"],
            period=payload["period"],
        )
    if kind == "BurstyArrivals":
        return BurstyArrivals(payload["base"], [tuple(b) for b in payload["bursts"]])
    if kind == "RampArrivals":
        return RampArrivals(
            rate_start=payload["rate_start"],
            rate_end=payload["rate_end"],
            duration=payload["duration"],
        )
    if kind == "CompositeArrivals":
        return CompositeArrivals(
            [
                (seg["start"], arrivals_from_dict(seg["process"]))
                for seg in payload["segments"]
            ]
        )
    raise ConfigurationError(f"unknown arrivals kind {kind!r}")


def mix_from_dict(payload: Dict[str, float]) -> OperationMix:
    """Rebuild an operation mix from its ``describe()`` payload."""
    return OperationMix({KVOperation(op): share for op, share in payload.items()})


def spec_from_dict(payload: Dict[str, Any]) -> WorkloadSpec:
    """Rebuild a workload spec from its ``describe()`` payload.

    Trace-backed replay specs cannot round-trip through JSON: their
    payload summarizes the trace (content hash, op histogram) but does
    not embed the rows. Rebuilding one raises a
    :class:`~repro.errors.ConfigurationError` pointing back at the
    trace file — reload it with
    :func:`repro.workloads.trace.load_trace` and
    :func:`repro.workloads.trace.trace_spec` instead.
    """
    if "trace" in payload:
        content = payload["trace"].get("content_hash", "?")[:16]
        raise ConfigurationError(
            f"workload spec {payload.get('name')!r} replays a recorded "
            f"trace (content {content}…); trace rows are not embedded in "
            "JSON — reload the trace file with repro.workloads.trace."
            "load_trace and rebuild the spec with trace_spec"
        )
    schedule = None
    if "mix_schedule" in payload:
        schedule = MixSchedule(
            [
                (seg["start"], mix_from_dict(seg["mix"]))
                for seg in payload["mix_schedule"]["segments"]
            ]
        )
    return WorkloadSpec(
        name=payload["name"],
        mix=mix_from_dict(payload["mix"]),
        key_drift=drift_from_dict(payload["key_drift"]),
        arrivals=arrivals_from_dict(payload["arrivals"]),
        scan_length_mean=payload.get("scan_length_mean", 0),
        mix_schedule=schedule,
    )


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """Serialize a scenario (same payload as ``Scenario.describe()``)."""
    return scenario.describe()


def scenario_from_dict(
    payload: Dict[str, Any],
    initial_keys: Optional[np.ndarray] = None,
    data_injections: Optional[Dict[str, np.ndarray]] = None,
) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    Args:
        payload: The serialized scenario.
        initial_keys: Key array to load (not embedded in the payload).
        data_injections: Optional ``{segment label: keys}`` for segments
            that declared injections (also not embedded).
    """
    injections = data_injections or {}
    segments: List[Segment] = []
    for seg in payload["segments"]:
        declared = seg.get("data_injection", 0)
        injection = injections.get(seg["label"])
        if declared and injection is None:
            raise ConfigurationError(
                f"segment {seg['label']!r} declared a data injection of "
                f"{declared} keys; pass it via data_injections"
            )
        segments.append(
            Segment(
                spec=spec_from_dict(seg["spec"]),
                duration=seg["duration"],
                label=seg["label"],
                data_injection=injection,
            )
        )
    training = None
    if payload.get("initial_training"):
        info = payload["initial_training"]
        hardware = _HARDWARE.get(info.get("hardware", "cpu"), CPU)
        training = TrainingPhase(
            budget_seconds=info["budget_seconds"], hardware=hardware
        )
    fault_plan = None
    if payload.get("faults"):
        fault_plan = FaultPlan.from_dict(payload["faults"])
    return Scenario(
        name=payload["name"],
        segments=segments,
        initial_training=training,
        initial_keys=initial_keys,
        tick_interval=payload.get("tick_interval", 1.0),
        seed=payload.get("seed", 0),
        fault_plan=fault_plan,
        drift_factor=payload.get("drift_factor"),
    )


# -- run results & driver config (matrix-runner transport) ---------------------------
#
# The matrix runner ships results across process boundaries and stores
# them in its on-disk cache; both use these dict payloads, so a cached
# entry, a worker response, and an exported artifact are the same format.


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Serialize a run result (same payload as ``RunResult.to_dict``)."""
    return result.to_dict()


def run_result_from_dict(payload: Dict[str, Any]) -> RunResult:
    """Rebuild a run result from :func:`run_result_to_dict` output."""
    return RunResult.from_dict(payload)


def driver_config_to_dict(config: DriverConfig) -> Dict[str, Any]:
    """Serialize driver knobs (same payload as ``DriverConfig.describe``)."""
    return config.describe()


def driver_config_from_dict(payload: Dict[str, Any]) -> DriverConfig:
    """Rebuild a :class:`DriverConfig` from :func:`driver_config_to_dict`."""
    hardware_name = payload.get("online_hardware", "cpu")
    hardware = _HARDWARE.get(str(hardware_name).lower())
    if hardware is None:
        raise ConfigurationError(f"unknown hardware profile {hardware_name!r}")
    return DriverConfig(
        online_hardware=hardware,
        max_queries=payload.get("max_queries", 2_000_000),
        jitter_arrivals=payload.get("jitter_arrivals", True),
        min_service_time=payload.get("min_service_time", 1e-9),
        servers=payload.get("servers", 1),
        use_batching=payload.get("use_batching", True),
        truncate_max_queries=payload.get("truncate_max_queries", False),
        block_size=payload.get("block_size"),
    )


def streaming_summary_to_dict(summary: StreamingRunSummary) -> Dict[str, Any]:
    """Serialize a streaming summary (``StreamingRunSummary.to_dict``)."""
    return summary.to_dict()


def streaming_summary_from_dict(payload: Dict[str, Any]) -> StreamingRunSummary:
    """Rebuild a summary from :func:`streaming_summary_to_dict` output."""
    return StreamingRunSummary.from_dict(payload)


def shard_spec_to_dict(spec: ShardSpec) -> Dict[str, Any]:
    """Serialize a shard spec (``ShardSpec.to_dict``)."""
    return spec.to_dict()


def shard_spec_from_dict(payload: Dict[str, Any]) -> ShardSpec:
    """Rebuild a :class:`~repro.core.streaming.ShardSpec` from its payload."""
    return ShardSpec.from_dict(payload)


def accumulator_states_to_dict(accumulators) -> List[Dict[str, Any]]:
    """Serialize streaming accumulators as ``{"name", "state"}`` rows.

    The wire form sharded workers send across the process boundary;
    round-trips through :func:`accumulator_states_from_dict`.
    """
    return [
        {"name": accumulator.name, "state": accumulator.state_dict()}
        for accumulator in accumulators
    ]


def accumulator_states_from_dict(payload: List[Dict[str, Any]]) -> List[Any]:
    """Rebuild registered accumulators from their wire rows.

    Uses the :data:`repro.metrics.STREAMING_ACCUMULATOR_TYPES` registry;
    unregistered names raise
    :class:`~repro.errors.ConfigurationError`.
    """
    from repro.metrics import accumulator_from_state

    return [
        accumulator_from_state(row["name"], row["state"]) for row in payload
    ]


def tenant_report_to_dict(report) -> Dict[str, Any]:
    """Serialize a tenant session record (``TenantReport.to_dict``)."""
    return report.to_dict()


def tenant_report_from_dict(payload: Dict[str, Any]):
    """Rebuild a :class:`~repro.core.tenancy.TenantReport` from its payload."""
    from repro.core.tenancy import TenantReport

    return TenantReport.from_dict(payload)


def service_report_to_dict(report) -> Dict[str, Any]:
    """Serialize a serve-call ledger (``ServiceReport.to_dict``)."""
    return report.to_dict()


def service_report_from_dict(payload: Dict[str, Any]):
    """Rebuild a :class:`~repro.core.tenancy.ServiceReport` from its payload."""
    from repro.core.tenancy import ServiceReport

    return ServiceReport.from_dict(payload)


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Serialize a run trace (same payload as ``Trace.to_dict``)."""
    return trace.to_dict()


def trace_from_dict(payload: Dict[str, Any]) -> Trace:
    """Rebuild a :class:`~repro.observability.Trace` from its payload."""
    return Trace.from_dict(payload)
