#!/usr/bin/env python3
"""Training-budget vs DBA-effort study (Fig 1d end to end).

Sweeps the learned store's training budget on CPU and GPU hardware
profiles, runs the traditional store at every DBA tuning level, and
prints the Fig 1d curve with the paper's new metric — the training cost
to outperform a manually tuned system — plus a 3-year TCO projection.

Run:
    python examples/training_budget_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Benchmark
from repro.core.hardware import CPU, GPU, TPU
from repro.core.phases import TrainingPhase
from repro.metrics.cost import DBAModel, TCOModel, training_cost_to_outperform
from repro.reporting import render_fig1d
from repro.scenarios import default_dataset, training_budget_scenario
from repro.suts import LearnedKVStore, TraditionalKVStore

RATE = 3200.0
DURATION = 20.0
FANOUT = 160


def effective_throughput(result) -> float:
    horizon = result.duration
    return float((result.completions() <= horizon).sum()) / horizon


def main() -> None:
    dataset = default_dataset(n=50_000)
    bench = Benchmark()
    full = LearnedKVStore(max_fanout=FANOUT).cost_model.full_retrain_seconds(
        len(dataset)
    )

    print("sweeping training budgets (learned store)…")
    learned_curve = []
    for hardware in (CPU, GPU, TPU):
        for fraction in (0.02, 0.1, 0.3, 1.0):
            scenario = training_budget_scenario(
                dataset, budget_seconds=full * fraction, rate=RATE,
                duration=DURATION,
            )
            scenario.initial_training = TrainingPhase(
                budget_seconds=full * fraction, hardware=hardware
            )
            result = bench.run(LearnedKVStore(max_fanout=FANOUT), scenario)
            cost = result.total_training_cost()
            throughput = effective_throughput(result)
            learned_curve.append((cost, throughput))
            print(f"  {hardware.name:>4s} budget {fraction:4.0%}: "
                  f"${cost:.6f} -> {throughput:7.1f} q/s "
                  f"(mean latency {np.mean(result.latencies())*1000:9.2f} ms)")

    print("\nsweeping DBA tuning levels (traditional store)…")
    dba = DBAModel()
    traditional_levels = []
    for level in range(dba.levels):
        scenario = training_budget_scenario(
            dataset, budget_seconds=0.0, rate=RATE, duration=DURATION
        )
        result = bench.run(TraditionalKVStore(tuning_level=level), scenario)
        throughput = effective_throughput(result)
        traditional_levels.append((dba.cost_of_level(level), throughput))
        print(f"  level {level}: ${dba.cost_of_level(level):8,.0f} -> "
              f"{throughput:7.1f} q/s")

    crossover = training_cost_to_outperform(learned_curve, traditional_levels)
    print()
    print(render_fig1d(learned_curve, traditional_levels, crossover,
                       learned_name="learned-kv",
                       traditional_name="btree-kv(DBA)"))

    # 3-year TCO projection under a monthly workload change.
    tco = TCOModel(dba=dba)
    session = max(c for c, _ in learned_curve if c > 0)
    print("\n3-year TCO with monthly workload changes (36 re-tunes/retrains):")
    print(f"  traditional (DBA level 2): "
          f"${tco.traditional_tco(tuning_level=2, retunes=36):>12,.0f}")
    print(f"  learned (auto-retrain):    "
          f"${tco.learned_tco(session, sessions=37):>12,.2f}")


if __name__ == "__main__":
    main()
