#!/usr/bin/env python3
"""Record → replay → synthesize → compare: the full trace round trip.

Walkthrough companion to docs/trace-replay.md. The script:

1. Records a "production" trace by generating a drifting query stream
   and saving it in the versioned CSV trace format.
2. Reloads the file and replays it bit-identically against a B+ tree
   store (the executed arrivals *are* the recorded timestamps).
3. Fits the §V-C synthesizer to the trace (`round_trip`) and prints the
   divergence report — the measured answer to "can the parametric spec
   replace the recording?".

Run:
    python examples/trace_round_trip.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.benchmark import Benchmark
from repro.core.scenario import Scenario
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import NormalDistribution, ZipfDistribution
from repro.workloads.drift import AbruptDrift
from repro.workloads.generators import KVOperation, KVWorkload, OperationMix, WorkloadSpec
from repro.workloads.patterns import BurstyArrivals
from repro.workloads.trace import QueryTrace, load_trace, round_trip, save_trace


def record_production_trace(path: Path) -> QueryTrace:
    """Generate a drifting query stream and save it as a trace file."""
    spec = WorkloadSpec(
        name="prod",
        mix=OperationMix(
            {KVOperation.READ: 0.6, KVOperation.UPDATE: 0.25,
             KVOperation.SCAN: 0.15}
        ),
        key_drift=AbruptDrift(
            [NormalDistribution(0.0, 1000.0, 500.0, 60.0),
             ZipfDistribution(0, 1000, theta=1.1)],
            [15.0],
        ),
        arrivals=BurstyArrivals(
            base=30.0, bursts=[(10.0, 2.0, 4.0), (20.0, 2.0, 4.0)]
        ),
        scan_length_mean=8,
    )
    rng = np.random.default_rng(3)
    times = spec.arrivals.arrivals(rng, 0.0, 30.0, jitter=False)
    batch = KVWorkload(spec, seed=3).next_batch(times)
    trace = QueryTrace(
        timestamps=batch.arrivals,
        ops=batch.ops,
        keys=batch.keys,
        scan_lengths=batch.scan_lengths,
        name="prod",
    )
    save_trace(trace, path)
    return trace


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "prod.csv"
        recorded = record_production_trace(path)
        print(f"recorded {recorded.n} queries over {recorded.span:.1f}s "
              f"-> {path.name} (content {recorded.content_hash()[:12]}…)")

        # --- replay the file bit-identically -----------------------------
        trace = load_trace(path)
        scenario = Scenario.from_trace(
            trace, initial_keys=np.unique(trace.keys)
        )
        result = Benchmark().run(TraditionalKVStore(), scenario)
        faithful = np.array_equal(
            result.columns.arrivals, trace.rebased().timestamps
        )
        print(f"replayed {result.columns.arrivals.size} queries "
              f"(arrivals == recorded timestamps: {faithful})")

        # --- fit the synthesizer and measure the divergence --------------
        spec, synthesis, report = round_trip(trace, seed=0)
        print(f"fitted spec {spec.name!r}: "
              f"key-fit KS={synthesis.ks_distance:.4f}")
        print(f"round trip: KS(keys)={report.ks_keys:.4f} "
              f"TV(ops)={report.tv_ops:.4f} "
              f"rate-err={report.arrival_rate_error:.4f} "
              f"phi={report.phi:.4f}")
        print(f"high fidelity: {report.high_fidelity} "
              f"({report.n_synthetic} synthetic vs "
              f"{report.n_trace} recorded)")


if __name__ == "__main__":
    main()
