#!/usr/bin/env python3
"""Learned query optimization on the relational substrate (§II).

Runs the analytic workload (filters + joins over orders ⋈ customers with
drifting predicate ranges) through two optimizers:

* the traditional cost-based optimizer with histogram statistics
  collected once at startup, and
* Bao-style bandit steering whose arms wrap the same optimizer, fed by a
  learned cardinality model that trains online from every executed
  query's observed cardinalities (§IV's "ground truth ... obtained
  during query execution").

Prints per-phase service times, the bandit's arm usage, and the learned
cardinality model's accuracy trajectory.

Run:
    python examples/learned_optimizer_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.plans import Filter, Scan
from repro.suts.analytic import (
    AnalyticDriver,
    AnalyticWorkload,
    LearnedOptimizerSUT,
    TraditionalOptimizerSUT,
    build_analytic_catalog,
)
from repro.workloads.distributions import UniformDistribution
from repro.workloads.drift import AbruptDrift

RATE = 20.0
SEG = 20.0


def make_workload() -> AnalyticWorkload:
    drift = AbruptDrift(
        [UniformDistribution(0.0, 150.0), UniformDistribution(400.0, 700.0)],
        [SEG],
    )
    return AnalyticWorkload(threshold_drift=drift, window=80.0,
                            join_fraction=0.7, seed=3)


def main() -> None:
    results = {}
    suts = {}
    for name, factory in (
        ("traditional", TraditionalOptimizerSUT),
        ("learned", LearnedOptimizerSUT),
    ):
        catalog = build_analytic_catalog(n_orders=4000, n_customers=400, seed=9)
        sut = factory(catalog)
        suts[name] = sut
        results[name] = AnalyticDriver(seed=17).run(
            sut,
            [("dense-predicates", make_workload(), SEG, RATE),
             ("sparse-predicates", make_workload(), SEG, RATE)],
        )

    print("per-phase mean service time (ms):")
    for name, result in results.items():
        for segment in ("dense-predicates", "sparse-predicates"):
            services = [q.service_time for q in result.queries
                        if q.segment == segment]
            print(f"  {name:<12s} {segment:<18s} "
                  f"{np.mean(services)*1000:8.3f} ms over {len(services)} queries")

    learned = suts["learned"]
    print("\nbandit arm usage (after both phases):")
    for (arm_name, _, _), count in zip(learned.steering.ARMS,
                                       learned.steering.arm_counts):
        print(f"  {arm_name:<12s} {count:4d} decisions")

    print(f"\nlearned cardinality model: "
          f"{learned.learned_cards.trained_examples} labels consumed, "
          f"{learned.learned_cards.label_collection_rows} ground-truth rows")

    # Accuracy spot check on an unseen predicate from the *current*
    # regime (online learners weight recent labels; a stale-regime query
    # would measure exactly the recency the model is supposed to have).
    catalog = learned.catalog
    executor = Executor(catalog)
    test_plan = Filter(Scan("orders"), col("amount").between(450.0, 530.0))
    truth = executor.execute(test_plan).table.row_count
    q_error = learned.learned_cards.q_error(test_plan, truth, catalog)
    print(f"spot-check q-error on an unseen current-regime predicate: "
          f"{q_error:.2f} "
          f"(estimate {learned.learned_cards.estimate(test_plan, catalog):.0f} "
          f"vs true {truth})")


if __name__ == "__main__":
    main()
