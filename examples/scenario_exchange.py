#!/usr/bin/env python3
"""Shareable benchmark definitions (§IV's comparability requirement).

"The main challenges entail ... ensuring that benchmark results remain
comparable across many deployments with wide-ranging designs." Results
are comparable only if the scenario itself is an exchangeable artifact.
This example plays two parties:

* Site A defines a dynamic scenario, runs its system, and publishes the
  scenario as JSON plus the dataset recipe (name, n, seed) and the
  scenario fingerprint.
* Site B rebuilds the dataset from the recipe, loads the JSON, verifies
  the fingerprint matches (so both sites demonstrably ran the *same*
  benchmark), runs its own system, and the two results are directly
  comparable.

Run:
    python examples/scenario_exchange.py
"""

from __future__ import annotations

import json
import tempfile

from repro.core import Benchmark
from repro.data.datasets import build_dataset
from repro.metrics import area_between_systems
from repro.scenarios import abrupt_shift, expected_access_sample
from repro.serialization import scenario_from_dict, scenario_to_dict
from repro.suts import LearnedKVStore, TraditionalKVStore

DATASET_RECIPE = {"name": "osm", "n": 30_000, "seed": 7}


def site_a(path: str) -> tuple:
    """Define, run, and publish the benchmark."""
    dataset = build_dataset(**DATASET_RECIPE)
    scenario = abrupt_shift(dataset, rate=2800.0, segment_duration=20.0,
                            train_budget=1e9)
    with open(path, "w") as handle:
        json.dump(scenario_to_dict(scenario), handle, indent=2)
    sample = expected_access_sample(scenario)
    result = Benchmark().run(
        LearnedKVStore(max_fanout=128, expected_access_sample=sample), scenario
    )
    print(f"[site A] published scenario {scenario.name!r} "
          f"(fingerprint {scenario.fingerprint()[:16]}…) and dataset recipe "
          f"{DATASET_RECIPE}")
    print(f"[site A] learned-kv: {result.mean_throughput():.1f} q/s over "
          f"{len(result.queries)} queries")
    return scenario.fingerprint(), result


def site_b(path: str, expected_fingerprint: str):
    """Rebuild, verify, and run a different system on the same benchmark."""
    dataset = build_dataset(**DATASET_RECIPE)
    with open(path) as handle:
        scenario = scenario_from_dict(json.load(handle),
                                      initial_keys=dataset.keys)
    fingerprint = scenario.fingerprint()
    assert fingerprint == expected_fingerprint, "scenario mismatch!"
    print(f"[site B] fingerprint verified: {fingerprint[:16]}… — running "
          "the same benchmark")
    result = Benchmark().run(TraditionalKVStore(), scenario)
    print(f"[site B] btree-kv: {result.mean_throughput():.1f} q/s over "
          f"{len(result.queries)} queries")
    return result


def main() -> None:
    with tempfile.NamedTemporaryFile(mode="w", suffix=".json",
                                     delete=False) as handle:
        path = handle.name
    fingerprint, result_a = site_a(path)
    result_b = site_b(path, fingerprint)
    area = area_between_systems(result_a, result_b)
    print(f"\ncomparable result: area(learned - btree) = {area:,.0f} q·s "
          "on the *identical* (fingerprint-verified) scenario")


if __name__ == "__main__":
    main()
