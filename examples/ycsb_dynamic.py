#!/usr/bin/env python3
"""Dynamic YCSB: chaining the classic workloads into one run (§III-A).

Traditional YCSB runs each core workload (A-F) as a separate, fixed
benchmark. The paper argues learned systems must be measured across the
*transitions*. This example chains YCSB-C (read only) → YCSB-A (update
heavy) → YCSB-E (scan heavy) in a single scenario and compares three
stores: the adaptive learned store, a B+ tree, and a hash index (great
until the scans arrive).

Run:
    python examples/ycsb_dynamic.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Benchmark, Scenario, Segment
from repro.core.phases import TrainingPhase
from repro.metrics import box_stats
from repro.reporting import sparkline
from repro.scenarios import default_dataset
from repro.suts import HashKVStore, LearnedKVStore, TraditionalKVStore
from repro.workloads.ycsb import ycsb_workload

RATE = 1200.0
SEG = 25.0


def main() -> None:
    dataset = default_dataset(n=50_000)
    segments = []
    for letter in ("C", "A", "E"):
        spec = ycsb_workload(letter, low=dataset.low, high=dataset.high,
                             rate=RATE)
        segments.append(Segment(spec=spec, duration=SEG))
    scenario = Scenario(
        name="ycsb-c-a-e",
        segments=segments,
        initial_training=TrainingPhase(budget_seconds=1e9),
        initial_keys=dataset.keys,
        seed=41,
    )

    bench = Benchmark()
    stores = [
        LearnedKVStore(max_fanout=160, retrain_cooldown=2.0),
        TraditionalKVStore(),
        HashKVStore(),
    ]
    print(f"scenario: YCSB-C → YCSB-A → YCSB-E at {RATE:.0f} q/s offered\n")
    results = {}
    for store in stores:
        result = bench.run(store, scenario)
        results[store.name] = result
        print(f"=== {store.name} ===")
        for label, lo, hi in result.segments:
            queries = result.queries_in_segment(label)
            latencies = [q.latency for q in queries]
            stats = box_stats(latencies)
            print(f"  {label:8s} median latency {stats.median*1000:10.3f} ms   "
                  f"p-max {stats.maximum*1000:12.1f} ms")
        _, counts = result.throughput_series()
        print(f"  tp {sparkline(counts)}")
        print()

    # The headline: the hash store wins YCSB-C and collapses on YCSB-E.
    hash_c = np.median([q.latency for q in results["hash-kv"].queries_in_segment("ycsb-c")])
    hash_e = np.median([q.latency for q in results["hash-kv"].queries_in_segment("ycsb-e")])
    print(f"hash store: ycsb-c median {hash_c*1000:.3f} ms vs "
          f"ycsb-e median {hash_e*1000:.1f} ms — a single-workload benchmark "
          "would have certified it")


if __name__ == "__main__":
    main()
