#!/usr/bin/env python3
"""Drift-factor sweep: performance against *measured* drift intensity.

Dials the ``drift_factor`` knob from 0 (drifted segment identical to
the trained-on base workload) to 1 (full shift: far hotspot plus a
mixed read/update/insert/scan op mix), runs the adaptive learned store
and the B+ tree at each point, and prints per factor:

* Φ — the *computed* drift distance between the base and drifted
  segments, measured from realized probe query streams (KS over keys +
  total-variation over op mixes), not assumed from the knob;
* the drifted-segment mean latency for both stores;
* the learned store's Fig 1b adaptability numbers (area vs ideal,
  recovery time).

Run:
    python examples/drift_axis_sweep.py
"""

from __future__ import annotations

from repro.core import Benchmark
from repro.metrics.adaptability import adaptability_vs_drift
from repro.metrics.specialization import drift_specialization_curve
from repro.scenarios import default_dataset, drift_axis
from repro.suts import LearnedKVStore, TraditionalKVStore

FACTORS = (0.0, 0.25, 0.5, 0.75, 1.0)
RATE = 3200.0
SEG_DURATION = 20.0
FANOUT = 160


def main() -> None:
    dataset = default_dataset(n=50_000)
    bench = Benchmark()

    print("sweeping the drift-factor axis…")
    runs = {}
    for factor in FACTORS:
        scenario = drift_axis(
            dataset, factor=factor, rate=RATE, segment_duration=SEG_DURATION
        )
        runs[factor] = {
            "scenario": scenario,
            "learned": bench.run(LearnedKVStore(max_fanout=FANOUT), scenario),
            "btree": bench.run(TraditionalKVStore(), scenario),
        }
        print(f"  factor {factor:4.2f}: ran both stores")

    def pairs(sut):
        return [(runs[f]["scenario"], runs[f][sut]) for f in FACTORS]

    learned_curve = drift_specialization_curve(pairs("learned"))
    btree_curve = drift_specialization_curve(pairs("btree"))
    learned_adapt = adaptability_vs_drift(pairs("learned"))

    print()
    print("factor    phi   phi_data  phi_mix   learned ms  btree ms  "
          "area-vs-ideal  recovery s")
    for i, factor in enumerate(FACTORS):
        row, adapt = learned_curve[i], learned_adapt[i]
        print(f"{factor:6.2f} {row['phi']:7.4f} {row['phi_data']:9.4f} "
              f"{row['phi_workload']:8.4f} "
              f"{row['mean_latency'] * 1000:11.3f} "
              f"{btree_curve[i]['mean_latency'] * 1000:9.3f} "
              f"{adapt['area_vs_ideal']:13.1f} "
              f"{str(adapt['recovery_seconds']):>10s}")

    print()
    print("Φ is measured, monotone in the knob, and exactly 0 at factor 0 —")
    print("the factor-0 stream is bit-identical to the unblended base run.")


if __name__ == "__main__":
    main()
