#!/usr/bin/env python3
"""Quickstart: benchmark a learned KV store against a B+ tree store.

Builds a synthetic dataset, defines a two-phase scenario whose access
distribution shifts abruptly mid-run (the situation the paper argues
fixed benchmarks never test), runs both systems through the benchmark
driver, and prints the full report — specialization breakdown (Fig 1a),
adaptability (Fig 1b), SLA bands (Fig 1c), and the cost split (Fig 1d).

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import Benchmark
from repro.metrics import area_between_systems, calibrate_sla
from repro.reporting import build_report
from repro.scenarios import abrupt_shift, default_dataset, expected_access_sample
from repro.suts import LearnedKVStore, TraditionalKVStore


def main() -> None:
    # 1. A dataset: 50k keys with the lumpy shape of OSM cell ids.
    dataset = default_dataset(n=50_000)
    print(f"dataset: {len(dataset)} keys in [{dataset.low:.3g}, {dataset.high:.3g}]")

    # 2. A dynamic scenario: hot range A for 30s, then hot range B.
    scenario = abrupt_shift(dataset, rate=3200.0, segment_duration=30.0,
                            train_budget=1e9)
    sample = expected_access_sample(scenario)

    # 3. Two systems under test.
    learned = LearnedKVStore(max_fanout=160, retrain_cooldown=2.0,
                             expected_access_sample=sample)
    traditional = TraditionalKVStore()

    # 4. Run the benchmark (virtual clock; deterministic).
    bench = Benchmark()
    learned_result = bench.run(learned, scenario)
    traditional_result = bench.run(traditional, scenario)

    # 5. Report. SLA calibrated from the traditional baseline at a
    #    sustainable load, per §V-D2.
    calibration = abrupt_shift(dataset, rate=1800.0, segment_duration=30.0)
    baseline = bench.run(TraditionalKVStore(), calibration)
    sla = calibrate_sla(baseline, percentile=99.0, headroom=1.5)

    for result in (learned_result, traditional_result):
        print()
        print(build_report(result, scenario, sla=sla).render())

    area = area_between_systems(learned_result, traditional_result)
    print()
    print(f"area between systems (learned - traditional): {area:,.0f} query·seconds")
    print("positive => the learned system completed work earlier overall")


if __name__ == "__main__":
    main()
