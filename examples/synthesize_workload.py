#!/usr/bin/env python3
"""Synthesize a benchmark workload from a 'production' trace (§V-C).

The paper: companies cannot share production data, but "a table column
containing email addresses could be replaced by a synthetic email
address generator that provides a similar data distribution". This
example plays both sides:

1. Generates a fake "production" trace — email-keyed lookups with a
   diurnal arrival pattern — standing in for data we are not allowed
   to publish.
2. Fits the synthesizer to it: an email generator for the key column
   and a piecewise rate model for the arrivals.
3. Scores both the original and the synthetic workload with the §V-C
   quality tool, and verifies the synthetic trace exercises a learned
   index the same way the original does.

Run:
    python examples/synthesize_workload.py
"""

from __future__ import annotations

import numpy as np

from repro.data import EmailGenerator, email_to_key
from repro.indexes import RecursiveModelIndex
from repro.metrics import ks_statistic
from repro.workloads.quality import score_dataset
from repro.workloads.synthesizer import fit_workload


def make_production_trace(rng, n=6000):
    """The data we 'cannot publish': email keys + diurnal timestamps."""
    addresses = EmailGenerator.demo_sample(rng, n)
    keys = np.asarray([email_to_key(a) for a in addresses])
    hours = rng.choice(24, size=n, p=_diurnal_profile())
    timestamps = np.sort(hours * 3600 + rng.uniform(0, 3600, n))
    return addresses, keys, timestamps


def _diurnal_profile():
    hours = np.arange(24)
    weight = 1.0 + 0.9 * np.sin((hours - 8) / 24 * 2 * np.pi)
    return weight / weight.sum()


def probe_index(keys, probe_keys):
    """Mean learned-index search window when probing with probe_keys."""
    unique = np.unique(keys)
    index = RecursiveModelIndex(fanout=256, max_delta=None)
    index.bulk_load([(float(k), i) for i, k in enumerate(unique)])
    windows = []
    for key in probe_keys[:500]:
        snapped = unique[min(len(unique) - 1, np.searchsorted(unique, key))]
        index.get(float(snapped))
        windows.append(index.stats.last_search_window)
    return float(np.mean(windows))


def main() -> None:
    rng = np.random.default_rng(2024)
    addresses, keys, timestamps = make_production_trace(rng)
    print(f"'production' trace: {len(keys)} queries, "
          f"{len(set(addresses))} distinct addresses")

    # --- fit the synthesizer ------------------------------------------------
    email_gen = EmailGenerator().fit(addresses)
    spec, key_report = fit_workload("synthetic-prod", keys,
                                    timestamps=timestamps, rate_window=3600.0)
    print(f"key-distribution fit: KS={key_report.ks_distance:.4f} "
          f"(high fidelity: {key_report.high_fidelity})")

    # --- generate the shareable synthetic trace ----------------------------
    synth_addresses = email_gen.generate(rng, 3000)
    synth_keys = spec.key_drift.at(0.0).sample(rng, len(keys))
    print(f"sample synthetic addresses: {synth_addresses[:3]}")
    print(f"key-space KS(original, synthetic): "
          f"{ks_statistic(keys, synth_keys):.4f}")

    # --- quality scoring (§V-C tool) ----------------------------------------
    for label, sample in (("original", keys), ("synthetic", synth_keys)):
        report = score_dataset(sample)
        print(f"quality[{label}]: overall={report.overall:.3f} "
              f"grade={report.grade()}")

    # --- does the synthetic trace exercise a learned index the same way? ----
    original_window = probe_index(keys, keys)
    synthetic_window = probe_index(synth_keys, synth_keys)
    print(f"mean RMI search window: original={original_window:.1f}, "
          f"synthetic={synthetic_window:.1f}")

    # --- arrival-pattern fidelity -------------------------------------------
    fitted_rates = [spec.arrivals.rate(h * 3600.0 + 10) for h in range(24)]
    peak, trough = max(fitted_rates), min(fitted_rates)
    print(f"fitted diurnal arrivals: trough={trough:.3f}/s peak={peak:.3f}/s "
          f"(ratio {peak/max(trough, 1e-9):.1f}x)")


if __name__ == "__main__":
    main()
