#!/usr/bin/env python3
"""Chaos benchmark: inject a stall and a crash, watch the recovery.

The runnable companion to ``docs/chaos-tutorial.md`` (experiment T6 in
EXPERIMENTS.md). Runs one steady scenario twice — fault-free, then with
a stop-the-world stall and a crash/restart — on a learned KV store, so
the crash also wipes the store's warm state and forces a cold retrain.
Prints a Fig 1c-style outage timeline (within-SLA vs. violated queries
per interval) and the resilience report: per-fault recovery time,
over-SLA mass inside the degraded windows, and the progress area the
faults cost versus the fault-free twin.

Everything is deterministic: both runs share every arrival, key, and
model decision, so every difference between them is fault-attributable.

Run:
    python examples/chaos_recovery.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core import Benchmark
from repro.core.scenario import Scenario, Segment
from repro.faults import CrashFault, FaultPlan, StallFault
from repro.metrics import calibrate_sla, latency_bands
from repro.metrics.resilience import resilience_report
from repro.suts import LearnedKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec

RATE = 800.0        # comfortably under capacity: fault signal, not queueing noise
DURATION = 100.0
N_KEYS = 50_000
KEY_DOMAIN = 100_000.0

PLAN = FaultPlan([
    StallFault(at=40.0, duration=4.0),          # stop-the-world pause
    CrashFault(at=70.0, recovery_seconds=2.0),  # restart + cold retrain
])


def build_scenario() -> Scenario:
    spec = simple_spec("steady", UniformDistribution(0, KEY_DOMAIN), rate=RATE)
    return Scenario(
        name="chaos-recovery",
        segments=[Segment(spec=spec, duration=DURATION)],
        seed=42,
        initial_keys=np.linspace(0.0, KEY_DOMAIN, N_KEYS),
    )


def make_sut() -> LearnedKVStore:
    # Fresh instance per run: SUTs are stateful.
    return LearnedKVStore()


def main() -> None:
    scenario = build_scenario()
    bench = Benchmark()

    print(f"scenario: {scenario.name!r}, {RATE:.0f} q/s x {DURATION:.0f}s, "
          f"seed {scenario.seed}")
    print("plan:     stall 4s @ t=40, crash (2s outage + retrain) @ t=70\n")

    # The twin pair: identical except for the fault plan.
    baseline = bench.run(make_sut(), scenario)
    faulted = bench.run(make_sut(), replace(scenario, fault_plan=PLAN))

    sla = calibrate_sla(baseline, percentile=99.0, headroom=1.5)
    print(f"baseline: {baseline.num_queries} queries, "
          f"{baseline.mean_throughput():.1f} q/s mean, "
          f"SLA calibrated at {sla * 1000:.3f} ms")
    print(f"faulted:  {faulted.num_queries} queries, "
          f"{faulted.mean_throughput():.1f} q/s mean")

    # The crash wiped the learned store's warm state; the cold rebuild is
    # a priced training event like any other (Lesson 3).
    retrains = [e for e in faulted.training_events if e.label == "crash-retrain"]
    for event in retrains:
        print(f"crash-retrain: t={event.start:.2f}s, "
              f"{event.duration:.3f}s outage extension, ${event.cost:.6f}")

    # Fig 1c-style outage timeline: '#' = SLA-violated, '.' = within SLA.
    print("\nSLA bands (5s intervals, 1 char per 40 queries):")
    for band in latency_bands(faulted, sla=sla, interval=5.0):
        bar = "#" * (band.violated // 40) + "." * (band.within_sla // 40)
        marks = []
        for fault in PLAN.point_faults:
            if band.start <= fault.at < band.start + 5.0:
                marks.append(fault.kind)
        suffix = f"   <-- {', '.join(marks)}" if marks else ""
        print(f"  {band.start:6.1f}s  {bar}{suffix}")

    # window=2.0: recovery compares non-overlapping windows, so the
    # window must be shorter than the outages it should resolve.
    report = resilience_report(
        faulted, plan=PLAN, sla=sla, baseline=baseline, window=2.0
    )
    print("\nresilience report:")
    for impact in report.impacts:
        recovered = ("not recovered" if impact.recovery_seconds is None
                     else f"recovered in {impact.recovery_seconds:.2f}s")
        print(f"  {impact.kind:<8} at t={impact.at:5.1f}s  ->  {recovered}")
    print("  over-SLA mass in degraded windows: "
          f"{report.degraded_sla_mass:.2f}s")
    print("  progress lost to faults:           "
          f"{report.area_lost:.1f} query-seconds")


if __name__ == "__main__":
    main()
