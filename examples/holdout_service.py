#!/usr/bin/env python3
"""Benchmark-as-a-service with sealed hold-outs (§V-A of the paper).

Scenario: a vendor has tuned ("overfit") a learned store to the
benchmark's published distribution. On the public benchmark it posts
hero numbers. The benchmark service, however, evaluates systems on
*sealed* hold-out scenarios that each system may run exactly once — and
there the overfit system's numbers collapse while the honest adaptive
system holds up.

Run:
    python examples/holdout_service.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Benchmark, BenchmarkService, Scenario, Segment
from repro.core.phases import TrainingPhase
from repro.errors import HoldoutViolationError
from repro.scenarios import default_dataset, expected_access_sample, hotspot
from repro.suts import LearnedKVStore, StaticLearnedKVStore
from repro.workloads.generators import simple_spec

RATE = 3200.0
FANOUT = 160


def make_scenario(dataset, position: float, name: str) -> Scenario:
    return Scenario(
        name=name,
        segments=[
            Segment(
                spec=simple_spec(name, hotspot(dataset, position), rate=RATE,
                                 read_fraction=1.0),
                duration=25.0,
            )
        ],
        initial_training=TrainingPhase(budget_seconds=1e9),
        initial_keys=dataset.keys,
        seed=77,
    )


def main() -> None:
    dataset = default_dataset(n=50_000)
    published = make_scenario(dataset, 0.1, "published-benchmark")
    sample = expected_access_sample(published)

    # --- the public benchmark: the overfit store shines ------------------
    bench = Benchmark()
    overfit = StaticLearnedKVStore(name="vendor-tuned",
                                   max_fanout=FANOUT,
                                   expected_access_sample=sample)
    public = bench.run(overfit, published)
    print("published benchmark (the distribution everyone trains on):")
    print(f"  vendor-tuned: {public.mean_throughput():8.1f} q/s, "
          f"p99 latency {np.percentile(public.latencies(), 99)*1000:.2f} ms")

    # --- the benchmark service: sealed hold-outs, one shot each ----------
    service = BenchmarkService()
    for i, position in enumerate((0.45, 0.85)):
        fingerprint = service.publish_holdout(
            make_scenario(dataset, position, f"sealed-{i}")
        )
        print(f"sealed hold-out {i}: fingerprint {fingerprint[:16]}…")

    print("\nout-of-sample evaluation (one shot per system):")
    for label, factory in (
        ("vendor-tuned (overfit)", lambda: StaticLearnedKVStore(
            name="vendor-tuned", max_fanout=FANOUT,
            expected_access_sample=sample)),
        ("adaptive learned", lambda: LearnedKVStore(
            name="adaptive", max_fanout=FANOUT, retrain_cooldown=2.0,
            expected_access_sample=sample)),
    ):
        reports = service.submit(factory)
        for report in reports:
            print(f"  {label:<24s} on {report.holdout_name}: "
                  f"{report.mean_throughput:8.1f} q/s, "
                  f"p99 {report.p99_latency*1000:9.2f} ms, "
                  f"training ${report.total_training_cost:.6f}")

    # --- re-running a hold-out is refused ---------------------------------
    print("\ntrying to run the hold-outs a second time (tuning against them):")
    try:
        service.submit(lambda: StaticLearnedKVStore(
            name="vendor-tuned", max_fanout=FANOUT,
            expected_access_sample=sample))
    except HoldoutViolationError as error:
        print(f"  refused: {error}")


if __name__ == "__main__":
    main()
