#!/usr/bin/env python
"""Docstring-coverage gate (stdlib only; CI's ``docs`` lane runs it).

Walks the given files/directories and requires a docstring on every
public module, class, and function — "public" meaning the name has no
leading underscore and, for functions, the definition is not nested
inside another function. Private helpers, dunders other than
``__init__`` on public classes, and test files are exempt.

Usage::

    python tools/check_docstrings.py src/repro/faults src/repro/metrics

Exit status 0 when coverage is 100%, 1 with a per-symbol listing
otherwise. This is deliberately a small ast walk rather than a third
party tool so the gate runs anywhere the interpreter does.
"""

from __future__ import annotations

import ast
import os
import sys
from typing import Iterator, List, Tuple


def _python_files(paths: List[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, _dirs, files in os.walk(path):
            for name in sorted(files):
                if name.endswith(".py") and not name.startswith("test_"):
                    yield os.path.join(root, name)


def _public_defs(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (qualified name, node) for every public def/class.

    Walks only module and class bodies: functions nested inside
    functions are implementation details, not API surface.
    """
    def walk(body, prefix):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = node.name
                if name.startswith("_") and name != "__init__":
                    continue
                if name == "__init__" and not prefix:
                    continue  # module-level __init__ would be bizarre
                yield f"{prefix}{name}", node
            elif isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                yield f"{prefix}{node.name}", node
                yield from walk(node.body, f"{prefix}{node.name}.")

    yield from walk(tree.body, "")


def check_file(path: str) -> List[str]:
    """Return the undocumented public symbols in ``path``."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path}: module docstring")
    for name, node in _public_defs(tree):
        if ast.get_docstring(node) is None:
            missing.append(f"{path}:{node.lineno}: {name}")
    return missing


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_docstrings.py <path> [<path> ...]",
              file=sys.stderr)
        return 2
    missing: List[str] = []
    checked = 0
    for path in _python_files(argv):
        checked += 1
        missing.extend(check_file(path))
    if missing:
        print(f"{len(missing)} undocumented public symbol(s) "
              f"across {checked} file(s):")
        for entry in missing:
            print(f"  {entry}")
        return 1
    print(f"docstring coverage OK: {checked} file(s), all public "
          f"symbols documented")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
