"""CSV export of results and metric artifacts."""

from __future__ import annotations

import csv
import io

import pytest

from repro.core.phases import TrainingEvent
from repro.core.results import QueryRecord, RunResult
from repro.metrics.sla import latency_bands
from repro.reporting.export import (
    bands_csv,
    curves_csv,
    queries_csv,
    specialization_csv,
    throughput_csv,
    training_events_csv,
)


@pytest.fixture
def result():
    queries = [
        QueryRecord(arrival=float(i), start=float(i), completion=float(i) + 0.2,
                    op="read", segment="a")
        for i in range(20)
    ]
    return RunResult(
        sut_name="x",
        scenario_name="s",
        queries=queries,
        segments=[("a", 0.0, 20.0)],
        training_events=[
            TrainingEvent(start=-1.0, duration=1.0, nominal_seconds=1.0,
                          hardware_name="cpu", cost=0.01, online=False,
                          label="offline")
        ],
    )


def _parse(text):
    return list(csv.reader(io.StringIO(text)))


class TestExports:
    def test_queries_csv_row_per_query(self, result):
        rows = _parse(queries_csv(result))
        assert rows[0] == ["arrival", "start", "completion", "latency", "op",
                           "segment"]
        assert len(rows) == 1 + len(result.queries)
        assert rows[1][4] == "read"

    def test_throughput_csv_sums(self, result):
        rows = _parse(throughput_csv(result, interval=1.0))
        total = sum(float(r[1]) for r in rows[1:])
        assert total == len(result.queries)

    def test_bands_csv(self, result):
        bands = latency_bands(result, sla=0.1, interval=5.0)
        rows = _parse(bands_csv(bands))
        assert rows[0] == ["t", "within_sla", "violated"]
        violated = sum(int(r[2]) for r in rows[1:])
        assert violated == len(result.queries)  # all latencies are 0.2 > 0.1

    def test_training_events_csv(self, result):
        rows = _parse(training_events_csv(result))
        assert len(rows) == 2
        assert rows[1][3] == "cpu"

    def test_curves_csv_long_format(self):
        text = curves_csv({"a": [(0.0, 1.0), (1.0, 2.0)], "b": [(0.0, 5.0)]})
        rows = _parse(text)
        assert rows[0] == ["series", "x", "y"]
        assert len(rows) == 4
        assert {r[0] for r in rows[1:]} == {"a", "b"}

    def test_specialization_csv(self, result, tiny_dataset):
        from repro.core.benchmark import Benchmark
        from repro.metrics.specialization import specialization_report
        from repro.scenarios import specialization_ladder
        from repro.suts.kv_traditional import TraditionalKVStore

        scenario, _ = specialization_ladder(
            tiny_dataset, rate=50.0, segment_duration=2.0
        )
        run = Benchmark().run(TraditionalKVStore(), scenario)
        report = specialization_report(run, scenario)
        rows = _parse(specialization_csv(report))
        assert "phi" in rows[0]
        assert len(rows) == 1 + len(report.segments)
