"""Figure renderers and the full report."""

from __future__ import annotations

import json

import pytest

from repro.core.benchmark import Benchmark
from repro.metrics.sla import calibrate_sla, latency_bands
from repro.metrics.specialization import specialization_report
from repro.reporting.figures import (
    render_fig1a,
    render_fig1b,
    render_fig1c,
    render_fig1d,
    sparkline,
)
from repro.reporting.report import build_report
from repro.scenarios import abrupt_shift, default_dataset
from repro.suts.kv_traditional import TraditionalKVStore


@pytest.fixture(scope="module")
def small_run():
    dataset = default_dataset(n=4000, seed=5)
    scenario = abrupt_shift(dataset, rate=120.0, segment_duration=5.0,
                            train_budget=0.0)
    result = Benchmark().run(TraditionalKVStore(), scenario)
    return scenario, result


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_capped(self):
        assert len(sparkline(range(500), width=40)) == 40

    def test_flat_zero(self):
        assert set(sparkline([0, 0, 0])) == {" "}

    def test_peak_uses_full_block(self):
        line = sparkline([0, 1, 10])
        assert line[-1] == "█"


class TestFigureRenderers:
    def test_fig1a_contains_rows(self, small_run):
        scenario, result = small_run
        report = specialization_report(result, scenario)
        text = render_fig1a([report])
        assert "Fig 1a" in text
        for seg in report.segments:
            assert seg.label in text

    def test_fig1b_lists_systems(self, small_run):
        _, result = small_run
        text = render_fig1b([result], areas_vs_ideal={result.sut_name: 123.0})
        assert result.sut_name in text and "area-vs-ideal" in text

    def test_fig1c_counts_violations(self, small_run):
        _, result = small_run
        sla = calibrate_sla(result)
        bands = latency_bands(result, sla)
        text = render_fig1c({result.sut_name: bands}, sla)
        assert "SLA" in text and result.sut_name in text

    def test_fig1d_crossover_rendering(self):
        text = render_fig1d(
            learned_curve=[(0.1, 50.0), (1.0, 200.0)],
            traditional_levels=[(0.0, 100.0), (600.0, 130.0)],
            crossover=1.0,
        )
        assert "training cost to outperform: $1.0000" in text
        text_none = render_fig1d([(0.1, 1.0)], [(0.0, 100.0)], None)
        assert "not reached" in text_none


class TestFullReport:
    def test_build_and_render(self, small_run):
        scenario, result = small_run
        sla = calibrate_sla(result)
        report = build_report(result, scenario, sla=sla)
        text = report.render()
        assert result.sut_name in text
        assert "adaptability" in text
        assert "cost" in text

    def test_to_dict_jsonable(self, small_run):
        scenario, result = small_run
        report = build_report(result, scenario, sla=0.5)
        payload = json.dumps(report.to_dict())
        parsed = json.loads(payload)
        assert parsed["sut"] == result.sut_name
        assert parsed["queries"] == len(result.queries)
        assert "adaptability" in parsed

    def test_without_sla_skips_bands(self, small_run):
        scenario, result = small_run
        report = build_report(result, scenario)
        assert report.bands is None and report.adjustment is None


class TestMultibandRenderer:
    def test_renders_all_classes(self, small_run):
        from repro.metrics.sla import multi_latency_bands
        from repro.reporting.figures import render_fig1c_multiband

        _, result = small_run
        thresholds = [0.001, 0.01, 0.1]
        rows = multi_latency_bands(result, thresholds=thresholds, interval=1.0)
        text = render_fig1c_multiband({result.sut_name: rows}, thresholds)
        assert result.sut_name in text
        assert "<1ms" in text and ">100ms" in text
        # Totals across classes conserve the query count.
        import re

        totals = [int(m) for m in re.findall(r"=(\d+)", text)]
        assert sum(totals) == len(result.queries)
