"""Catalog registry."""

from __future__ import annotations

import pytest

from repro.engine.catalog import Catalog
from repro.engine.schema import ColumnType, Schema
from repro.engine.table import Table
from repro.errors import SchemaError


def _table(name, rows=3):
    return Table.from_columns(
        name, Schema.of(("x", ColumnType.INT)), {"x": list(range(rows))}
    )


class TestCatalog:
    def test_register_and_get(self):
        catalog = Catalog()
        table = _table("t")
        catalog.register(table)
        assert catalog.get("t") is table
        assert "t" in catalog
        assert len(catalog) == 1

    def test_unknown_raises(self):
        with pytest.raises(SchemaError):
            Catalog().get("missing")

    def test_replace_under_same_name(self):
        catalog = Catalog()
        catalog.register(_table("t", rows=3))
        catalog.register(_table("t", rows=7))
        assert catalog.row_count("t") == 7
        assert len(catalog) == 1

    def test_names_sorted(self):
        catalog = Catalog()
        for name in ("zeta", "alpha", "mid"):
            catalog.register(_table(name))
        assert catalog.names() == ["alpha", "mid", "zeta"]

    def test_row_count(self):
        catalog = Catalog()
        catalog.register(_table("t", rows=5))
        assert catalog.row_count("t") == 5
