"""Predicate evaluation and signatures."""

from __future__ import annotations

import pytest

from repro.engine.expressions import And, Or, col
from repro.engine.schema import ColumnType, Schema
from repro.engine.table import Table


@pytest.fixture
def table():
    return Table.from_columns(
        "t",
        Schema.of(("x", ColumnType.FLOAT), ("tag", ColumnType.STRING)),
        {"x": [1.0, 2.0, 3.0, 4.0, 5.0], "tag": ["a", "b", "a", "c", "a"]},
    )


class TestComparisons:
    def test_gt(self, table):
        mask = (col("x") > 3.0).evaluate(table)
        assert mask.tolist() == [False, False, False, True, True]

    def test_le(self, table):
        mask = (col("x") <= 2.0).evaluate(table)
        assert mask.sum() == 2

    def test_eq_string(self, table):
        mask = (col("tag") == "a").evaluate(table)
        assert mask.sum() == 3

    def test_ne(self, table):
        mask = (col("tag") != "a").evaluate(table)
        assert mask.sum() == 2

    def test_between_inclusive(self, table):
        mask = col("x").between(2.0, 4.0).evaluate(table)
        assert mask.tolist() == [False, True, True, True, False]


class TestBoolean:
    def test_and(self, table):
        pred = And(col("x") > 1.0, col("tag") == "a")
        assert pred.evaluate(table).sum() == 2

    def test_or(self, table):
        pred = Or(col("x") <= 1.0, col("x") >= 5.0)
        assert pred.evaluate(table).sum() == 2

    def test_columns_collected(self):
        pred = And(col("x") > 1.0, col("tag") == "a")
        assert pred.columns() == ["tag", "x"]


class TestSignatures:
    def test_same_structure_same_signature(self):
        a = And(col("x") > 1.0, col("y") < 2.0)
        b = And(col("x") > 9.0, col("y") < 0.0)
        assert a.signature() == b.signature()

    def test_different_op_differs(self):
        assert (col("x") > 1.0).signature() != (col("x") < 1.0).signature()

    def test_different_column_differs(self):
        assert (col("x") > 1.0).signature() != (col("y") > 1.0).signature()

    def test_and_or_differ(self):
        a = And(col("x") > 1.0, col("y") < 2.0)
        o = Or(col("x") > 1.0, col("y") < 2.0)
        assert a.signature() != o.signature()


class TestSelectivityFeatures:
    def test_numeric_leaves_collected(self):
        pred = And(col("x") > 1.0, col("x") <= 10.0)
        leaves = pred.selectivity_features()
        assert ("x", ">", 1.0) in leaves
        assert ("x", "<=", 10.0) in leaves

    def test_between_expands(self):
        leaves = col("x").between(2.0, 5.0).selectivity_features()
        assert ("x", ">=", 2.0) in leaves and ("x", "<=", 5.0) in leaves

    def test_string_leaves_skipped(self):
        assert (col("tag") == "a").selectivity_features() == []
