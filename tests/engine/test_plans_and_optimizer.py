"""Plan subtree enumeration and the cost-based optimizer."""

from __future__ import annotations

import pytest

from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.optimizer_base import CostBasedOptimizer
from repro.engine.plans import (
    Aggregate,
    Filter,
    Join,
    Scan,
    plan_subtrees,
    workload_subtrees,
)
from repro.learned.cardinality import HistogramEstimator
from repro.metrics.similarity import jaccard_similarity


class TestSubtrees:
    def test_leaf_has_one_subtree(self):
        subtrees = plan_subtrees(Scan("t"))
        assert "Scan[t]" in subtrees

    def test_nested_plan_enumerates_all(self):
        plan = Aggregate(Filter(Scan("t"), col("x") > 1.0), "count")
        subtrees = plan_subtrees(plan)
        assert any(s.startswith("Agg") and "Filter" in s for s in subtrees)
        assert "Scan[t]" in subtrees

    def test_workload_union(self):
        a = Filter(Scan("t"), col("x") > 1.0)
        b = Filter(Scan("u"), col("x") > 1.0)
        union = workload_subtrees([a, b])
        assert "Scan[t]" in union and "Scan[u]" in union

    def test_jaccard_over_subtrees_orders_similarity(self):
        base = Filter(Scan("t"), col("x") > 1.0)
        same_shape = Filter(Scan("t"), col("x") > 9.0)  # same signature
        different = Join(Scan("t"), Scan("u"), "a", "b")
        sim_same = jaccard_similarity(plan_subtrees(base), plan_subtrees(same_shape))
        sim_diff = jaccard_similarity(plan_subtrees(base), plan_subtrees(different))
        assert sim_same > sim_diff

    def test_tables_helper(self):
        plan = Join(Scan("b"), Filter(Scan("a"), col("x") > 0), "k", "k")
        assert plan.tables() == ["a", "b"]


class TestOptimizer:
    @pytest.fixture
    def optimizer(self, orders_catalog):
        estimator = HistogramEstimator()
        estimator.analyze(orders_catalog, "orders")
        estimator.analyze(orders_catalog, "customers")
        return CostBasedOptimizer(estimator)

    def test_prefers_hash_join_on_large_inputs(self, optimizer, orders_catalog):
        plan = Join(Scan("orders"), Scan("customers"), "cid", "cid")
        best = optimizer.optimize(plan, orders_catalog)
        assert "hash" in best.plan.canonical()

    def test_chosen_plan_executes_correctly(self, optimizer, orders_catalog):
        plan = Join(
            Filter(Scan("orders"), col("amount") > 100.0),
            Scan("customers"),
            "cid",
            "cid",
        )
        best = optimizer.optimize(plan, orders_catalog)
        result = Executor(orders_catalog).execute(best.plan)
        reference = Executor(orders_catalog).execute(plan.with_method("hash"))
        assert result.table.row_count == reference.table.row_count

    def test_candidates_include_both_methods(self, optimizer):
        plan = Join(Scan("orders"), Scan("customers"), "cid", "cid")
        candidates = optimizer.enumerate_candidates(plan)
        methods = {c.method for c in candidates}
        assert methods == {"hash", "nl"}
        assert len(candidates) == 4  # 2 methods x 2 operand orders

    def test_cost_positive(self, optimizer, orders_catalog):
        best = optimizer.optimize(Scan("orders"), orders_catalog)
        assert best.cost > 0

    def test_better_estimates_never_hurt_chosen_cost(
        self, orders_catalog
    ):
        """An optimizer with exact cardinalities picks a plan whose true
        work is no worse than the histogram optimizer's choice."""
        from repro.learned.cardinality import TrueCardinalityOracle

        hist = HistogramEstimator()
        hist.analyze(orders_catalog, "orders")
        hist.analyze(orders_catalog, "customers")
        plan = Join(
            Filter(Scan("orders"), col("amount") > 400.0),
            Scan("customers"),
            "cid",
            "cid",
        )
        executor = Executor(orders_catalog)
        hist_choice = CostBasedOptimizer(hist).optimize(plan, orders_catalog)
        oracle_choice = CostBasedOptimizer(
            TrueCardinalityOracle(orders_catalog)
        ).optimize(plan, orders_catalog)
        hist_work = executor.execute(hist_choice.plan).work
        oracle_work = executor.execute(oracle_choice.plan).work
        assert oracle_work <= hist_work * 1.05
