"""Schema and Table behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.schema import ColumnType, Schema
from repro.engine.table import Table
from repro.errors import SchemaError


class TestSchema:
    def test_of_builder(self):
        schema = Schema.of(("a", ColumnType.INT), ("b", ColumnType.STRING))
        assert schema.names == ["a", "b"]
        assert schema.column("b").ctype == ColumnType.STRING

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", ColumnType.INT), ("a", ColumnType.FLOAT))

    def test_index_of_unknown_raises(self):
        schema = Schema.of(("a", ColumnType.INT))
        with pytest.raises(SchemaError):
            schema.index_of("z")

    def test_has(self):
        schema = Schema.of(("a", ColumnType.INT))
        assert schema.has("a") and not schema.has("b")

    def test_concat_disambiguates(self):
        left = Schema.of(("id", ColumnType.INT), ("x", ColumnType.FLOAT))
        right = Schema.of(("id", ColumnType.INT), ("y", ColumnType.FLOAT))
        joined = left.concat(right, "l", "r")
        assert joined.names == ["id", "x", "r_id", "y"]

    def test_equality(self):
        a = Schema.of(("a", ColumnType.INT))
        b = Schema.of(("a", ColumnType.INT))
        assert a == b


class TestTable:
    def _table(self):
        return Table.from_columns(
            "t",
            Schema.of(("k", ColumnType.INT), ("name", ColumnType.STRING)),
            {"k": [3, 1, 2], "name": ["c", "a", "b"]},
        )

    def test_row_count(self):
        assert self._table().row_count == 3

    def test_row_access(self):
        table = self._table()
        assert table.row(0) == (3, "c")
        with pytest.raises(IndexError):
            table.row(3)

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns(
                "t",
                Schema.of(("a", ColumnType.INT), ("b", ColumnType.INT)),
                {"a": [1], "b": [1, 2]},
            )

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns(
                "t", Schema.of(("a", ColumnType.INT)), {}
            )

    def test_append_rows(self):
        table = self._table()
        table.append_rows([{"k": 9, "name": "z"}])
        assert table.row_count == 4
        assert table.row(3) == (9, "z")

    def test_append_missing_column_rejected(self):
        table = self._table()
        with pytest.raises(SchemaError):
            table.append_rows([{"k": 9}])

    def test_select_rows_mask(self):
        table = self._table()
        subset = table.select_rows(np.asarray([True, False, True]))
        assert subset.row_count == 2
        assert subset.row(0) == (3, "c")

    def test_select_rows_indices(self):
        table = self._table()
        subset = table.select_rows(np.asarray([2, 0]))
        assert [r[0] for r in subset.rows()] == [2, 3]

    def test_numeric_stats(self):
        table = self._table()
        assert table.numeric_stats("k") == (1.0, 3.0)
        with pytest.raises(SchemaError):
            table.numeric_stats("name")

    def test_int_column_dtype(self):
        table = self._table()
        assert table.column("k").dtype == np.int64
