"""Plan execution: operators, joins, aggregation, cardinality labels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.plans import Aggregate, Filter, Join, Project, Scan
from repro.errors import PlanError, SchemaError


@pytest.fixture
def executor(orders_catalog):
    return Executor(orders_catalog)


class TestScanFilterProject:
    def test_scan_returns_all(self, executor, orders_catalog):
        result = executor.execute(Scan("orders"))
        assert result.table.row_count == orders_catalog.row_count("orders")

    def test_unknown_table(self, executor):
        with pytest.raises(SchemaError):
            executor.execute(Scan("nope"))

    def test_filter_matches_numpy(self, executor, orders_catalog):
        amounts = np.asarray(orders_catalog.get("orders").column("amount"))
        result = executor.execute(Filter(Scan("orders"), col("amount") > 150.0))
        assert result.table.row_count == int((amounts > 150.0).sum())

    def test_project_selects_columns(self, executor):
        result = executor.execute(Project(Scan("orders"), ["amount"]))
        assert result.table.schema.names == ["amount"]

    def test_project_requires_columns(self):
        with pytest.raises(PlanError):
            Project(Scan("orders"), [])


class TestJoins:
    def test_hash_and_nl_agree(self, executor, orders_catalog):
        small = orders_catalog.get("orders").select_rows(np.arange(80))
        small.name = "orders_small"
        orders_catalog.register(small)
        hash_result = executor.execute(
            Join(Scan("orders_small"), Scan("customers"), "cid", "cid", "hash")
        )
        nl_result = executor.execute(
            Join(Scan("orders_small"), Scan("customers"), "cid", "cid", "nl")
        )
        assert hash_result.table.row_count == nl_result.table.row_count

    def test_nl_costs_more_work(self, executor, orders_catalog):
        small = orders_catalog.get("orders").select_rows(np.arange(80))
        small.name = "orders_small2"
        orders_catalog.register(small)
        hash_result = executor.execute(
            Join(Scan("orders_small2"), Scan("customers"), "cid", "cid", "hash")
        )
        nl_result = executor.execute(
            Join(Scan("orders_small2"), Scan("customers"), "cid", "cid", "nl")
        )
        assert nl_result.work > hash_result.work

    def test_every_order_matches_one_customer(self, executor, orders_catalog):
        result = executor.execute(
            Join(Scan("orders"), Scan("customers"), "cid", "cid")
        )
        assert result.table.row_count == orders_catalog.row_count("orders")

    def test_join_output_schema_disambiguated(self, executor):
        result = executor.execute(
            Join(Scan("orders"), Scan("customers"), "cid", "cid")
        )
        names = result.table.schema.names
        assert "cid" in names and any(n.endswith("_cid") for n in names)


class TestAggregates:
    def test_count(self, executor, orders_catalog):
        result = executor.execute(Aggregate(Scan("orders"), "count"))
        assert result.scalar == orders_catalog.row_count("orders")

    def test_avg_matches_numpy(self, executor, orders_catalog):
        amounts = np.asarray(orders_catalog.get("orders").column("amount"))
        result = executor.execute(Aggregate(Scan("orders"), "avg", "amount"))
        assert result.scalar == pytest.approx(float(amounts.mean()))

    def test_min_max_sum(self, executor, orders_catalog):
        amounts = np.asarray(orders_catalog.get("orders").column("amount"))
        for agg, expected in (
            ("min", amounts.min()),
            ("max", amounts.max()),
            ("sum", amounts.sum()),
        ):
            result = executor.execute(Aggregate(Scan("orders"), agg, "amount"))
            assert result.scalar == pytest.approx(float(expected))

    def test_empty_input_aggregates_zero(self, executor):
        plan = Aggregate(Filter(Scan("orders"), col("amount") > 1e12), "sum", "amount")
        assert executor.execute(plan).scalar == 0.0

    def test_unknown_agg_rejected(self):
        with pytest.raises(PlanError):
            Aggregate(Scan("orders"), "median", "amount")


class TestCardinalityLabels:
    def test_every_node_labeled(self, executor):
        plan = Aggregate(
            Join(
                Filter(Scan("orders"), col("amount") > 100.0),
                Scan("customers"),
                "cid",
                "cid",
            ),
            "count",
        )
        result = executor.execute(plan)
        # Root + join + filter + 2 scans = 5 nodes labeled.
        assert len(result.cardinalities) == 5
        assert result.cardinalities[plan.canonical()] == 1

    def test_filter_label_matches_output(self, executor):
        plan = Filter(Scan("orders"), col("amount") > 100.0)
        result = executor.execute(plan)
        assert result.cardinalities[plan.canonical()] == result.table.row_count


class TestSort:
    def test_sort_orders_rows(self, executor, orders_catalog):
        from repro.engine.plans import Sort

        result = executor.execute(Sort(Scan("orders"), "amount"))
        amounts = np.asarray(result.table.column("amount"))
        assert (np.diff(amounts) >= 0).all()
        assert result.table.row_count == orders_catalog.row_count("orders")

    def test_sort_string_column_rejected(self, executor, orders_catalog):
        from repro.engine.plans import Sort
        from repro.engine.schema import ColumnType, Schema
        from repro.engine.table import Table

        names = Table.from_columns(
            "names",
            Schema.of(("tag", ColumnType.STRING)),
            {"tag": ["b", "a"]},
        )
        orders_catalog.register(names)
        with pytest.raises(PlanError):
            executor.execute(Sort(Scan("names"), "tag"))

    def test_sort_empty_input(self, executor):
        from repro.engine.expressions import col
        from repro.engine.plans import Sort

        plan = Sort(Filter(Scan("orders"), col("amount") > 1e12), "amount")
        result = executor.execute(plan)
        assert result.table.row_count == 0

    def test_learned_sorter_charges_its_work(self, orders_catalog):
        from repro.engine.executor import Executor
        from repro.engine.plans import Sort
        from repro.learned.sorter import LearnedSorter

        plan = Sort(Scan("orders"), "amount")
        classic = Executor(orders_catalog).execute(plan)
        learned = Executor(
            orders_catalog, learned_sorter=LearnedSorter()
        ).execute(plan)
        # Same rows either way; in-distribution learned sort does less work.
        assert learned.table.row_count == classic.table.row_count
        assert learned.work < classic.work
