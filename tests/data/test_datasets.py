"""Synthetic dataset builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import build_dataset, dataset_names
from repro.errors import ConfigurationError


class TestBuilders:
    @pytest.mark.parametrize("name", dataset_names())
    def test_keys_sorted_unique(self, name):
        ds = build_dataset(name, n=5000, seed=1)
        assert (np.diff(ds.keys) > 0).all()

    @pytest.mark.parametrize("name", dataset_names())
    def test_size_near_requested(self, name):
        ds = build_dataset(name, n=5000, seed=1)
        assert 0.7 * 5000 <= len(ds) <= 1.3 * 5000

    @pytest.mark.parametrize("name", dataset_names())
    def test_deterministic(self, name):
        a = build_dataset(name, n=2000, seed=9)
        b = build_dataset(name, n=2000, seed=9)
        assert np.array_equal(a.keys, b.keys)

    def test_seeds_differ(self):
        a = build_dataset("books", n=2000, seed=1)
        b = build_dataset("books", n=2000, seed=2)
        assert not np.array_equal(a.keys[:100], b.keys[:100])

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            build_dataset("nope")

    def test_tiny_n_rejected(self):
        with pytest.raises(ConfigurationError):
            build_dataset("uniform", n=5)

    def test_pairs_are_ranked(self):
        ds = build_dataset("uniform", n=1000, seed=1)
        pairs = ds.pairs()
        assert pairs[0][1] == 0
        assert pairs[-1][1] == len(ds) - 1

    def test_low_high(self):
        ds = build_dataset("sequential", n=1000, seed=1)
        assert ds.low == float(ds.keys[0])
        assert ds.high == float(ds.keys[-1])


class TestShapes:
    """The datasets must keep their qualitative difficulty ordering."""

    @staticmethod
    def _rmi_error(name: str) -> float:
        from repro.indexes.rmi import RecursiveModelIndex

        ds = build_dataset(name, n=20_000, seed=3)
        rmi = RecursiveModelIndex(fanout=64, max_delta=None)
        rmi.bulk_load(ds.pairs())
        return rmi.mean_error_bound()

    def test_uniform_easier_than_osm(self):
        assert self._rmi_error("uniform") < self._rmi_error("osm")

    def test_sequential_is_easy(self):
        assert self._rmi_error("sequential") < 50

    def test_adversarial_is_hard(self):
        assert self._rmi_error("adversarial") > self._rmi_error("uniform")
