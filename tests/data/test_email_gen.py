"""Synthetic email generator (the paper's §V-C example)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.email_gen import EmailGenerator, email_to_key
from repro.errors import ConfigurationError, NotTrainedError


class TestEmailToKey:
    def test_order_preserving(self):
        addresses = sorted(["alice@x.com", "bob@x.com", "carol@x.com", "zed@x.com"])
        keys = [email_to_key(a) for a in addresses]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_case_insensitive(self):
        assert email_to_key("Alice@X.com") == email_to_key("alice@x.com")

    def test_prefix_ties_collapse(self):
        long_a = "a" * 20 + "1@x.com"
        long_b = "a" * 20 + "2@x.com"
        assert email_to_key(long_a) == email_to_key(long_b)


class TestGenerator:
    def test_generate_before_fit_raises(self, rng):
        with pytest.raises(NotTrainedError):
            EmailGenerator().generate(rng, 5)

    def test_fit_requires_valid_addresses(self):
        with pytest.raises(ConfigurationError):
            EmailGenerator().fit(["not-an-email"])

    def test_generated_addresses_valid(self, rng):
        gen = EmailGenerator().fit(EmailGenerator.demo_sample(rng, 300))
        for address in gen.generate(rng, 50):
            local, _, domain = address.partition("@")
            assert local and domain

    def test_domains_come_from_sample(self, rng):
        sample = ["a@only.com", "bb@only.com", "ccc@only.com"]
        gen = EmailGenerator().fit(sample)
        assert all(a.endswith("@only.com") for a in gen.generate(rng, 20))

    def test_length_distribution_tracked(self, rng):
        short = [f"{'a'*3}@x.com"] * 50
        gen = EmailGenerator().fit(short)
        lengths = [len(a.split("@")[0]) for a in gen.generate(rng, 50)]
        assert max(lengths) <= 4  # 3 chars, minus possible stripping

    def test_keys_numeric_and_ordered_like_strings(self, rng):
        gen = EmailGenerator().fit(EmailGenerator.demo_sample(rng, 300))
        addresses = gen.generate(rng, 100)
        keys = [email_to_key(a) for a in addresses]
        order_by_key = np.argsort(keys)
        order_by_str = np.argsort([a[:12].lower() for a in addresses])
        # Same ordering up to 12-char encoding precision.
        assert list(order_by_key) == list(order_by_str)

    def test_distribution_similarity(self, rng):
        """Generated key distribution resembles the sample's (coarse KS)."""
        sample = EmailGenerator.demo_sample(rng, 1000)
        gen = EmailGenerator().fit(sample)
        sample_keys = np.sort([email_to_key(a) for a in sample])
        synth_keys = np.sort(gen.generate_keys(rng, 1000))
        grid = np.concatenate([sample_keys, synth_keys])
        grid.sort()
        cdf_a = np.searchsorted(sample_keys, grid, side="right") / sample_keys.size
        cdf_b = np.searchsorted(synth_keys, grid, side="right") / synth_keys.size
        assert np.abs(cdf_a - cdf_b).max() < 0.35
