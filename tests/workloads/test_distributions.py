"""Distribution sampling and CDF correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    HotspotDistribution,
    LognormalDistribution,
    MixtureDistribution,
    NormalDistribution,
    PiecewiseDistribution,
    UniformDistribution,
    ZipfDistribution,
)

ALL = [
    UniformDistribution(0.0, 100.0),
    ZipfDistribution(0.0, 100.0, theta=0.99, n_items=500),
    NormalDistribution(0.0, 100.0, mean=50.0, std=15.0),
    LognormalDistribution(0.0, 100.0, mu=0.0, sigma=1.0),
    HotspotDistribution(0.0, 100.0, hot_start=20.0, hot_width=10.0),
    PiecewiseDistribution(0.0, 100.0, [1, 3, 0.5, 2]),
    MixtureDistribution(
        [UniformDistribution(0.0, 50.0), UniformDistribution(50.0, 100.0)], [1, 3]
    ),
]


@pytest.fixture(params=ALL, ids=lambda d: d.name)
def dist(request):
    return request.param


class TestSamplingContract:
    def test_samples_in_domain(self, dist, rng):
        sample = dist.sample(rng, 5000)
        assert sample.min() >= dist.low
        assert sample.max() <= dist.high

    def test_sample_count(self, dist, rng):
        assert dist.sample(rng, 123).shape == (123,)

    def test_deterministic_given_seed(self, dist):
        a = dist.sample(np.random.default_rng(7), 100)
        b = dist.sample(np.random.default_rng(7), 100)
        assert np.array_equal(a, b)

    def test_cdf_monotone(self, dist):
        grid = np.linspace(dist.low - 5, dist.high + 5, 300)
        cdf = dist.cdf(grid)
        assert (np.diff(cdf) >= -1e-9).all()
        assert cdf[0] >= -1e-9 and cdf[-1] <= 1.0 + 1e-9

    def test_cdf_matches_empirical(self, dist, rng):
        """KS distance between analytic CDF and a large sample is small."""
        sample = np.sort(dist.sample(rng, 20_000))
        grid = np.linspace(dist.low, dist.high, 200)
        analytic = dist.cdf(grid)
        empirical = np.searchsorted(sample, grid, side="right") / sample.size
        assert np.abs(analytic - empirical).max() < 0.03

    def test_describe_is_jsonable(self, dist):
        import json

        payload = json.dumps(dist.describe())
        assert dist.name in payload or "kind" in payload


class TestValidation:
    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformDistribution(5.0, 5.0)

    def test_negative_theta_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfDistribution(0, 1, theta=-1.0)

    def test_bad_std_rejected(self):
        with pytest.raises(ConfigurationError):
            NormalDistribution(0, 1, mean=0.5, std=0.0)

    def test_bad_hot_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            HotspotDistribution(0, 1, 0.5, 0.1, hot_fraction=1.5)

    def test_piecewise_rejects_all_zero(self):
        with pytest.raises(ConfigurationError):
            PiecewiseDistribution(0, 1, [0, 0, 0])

    def test_mixture_weight_mismatch(self):
        with pytest.raises(ConfigurationError):
            MixtureDistribution([UniformDistribution(0, 1)], [1, 2])


class TestZipf:
    def test_higher_theta_more_skew(self, rng):
        flat = ZipfDistribution(0, 100, theta=0.1, n_items=200)
        steep = ZipfDistribution(0, 100, theta=1.4, n_items=200)
        def top_share(d):
            sample = d.sample(rng, 20_000)
            hist, _ = np.histogram(sample, bins=200, range=(0, 100))
            return np.sort(hist)[-10:].sum() / hist.sum()
        assert top_share(steep) > top_share(flat) + 0.1

    def test_permutation_scatters_hot_keys(self, rng):
        """With permute_seed, the hottest slot is not simply slot 0."""
        z = ZipfDistribution(0, 100, theta=1.2, n_items=100, permute_seed=42)
        sample = z.sample(rng, 20_000)
        hist, _ = np.histogram(sample, bins=100, range=(0, 100))
        assert hist.argmax() != 0

    def test_theta_zero_near_uniform(self, rng):
        z = ZipfDistribution(0, 100, theta=0.0, n_items=100)
        sample = z.sample(rng, 20_000)
        hist, _ = np.histogram(sample, bins=10, range=(0, 100))
        assert hist.std() / hist.mean() < 0.1


class TestHotspot:
    def test_hot_range_receives_fraction(self, rng):
        h = HotspotDistribution(0, 100, hot_start=30, hot_width=10, hot_fraction=0.8)
        sample = h.sample(rng, 20_000)
        in_hot = ((sample >= 30) & (sample <= 40)).mean()
        assert in_hot == pytest.approx(0.8 + 0.2 * 0.1, abs=0.03)

    def test_hot_start_wraps(self, rng):
        h = HotspotDistribution(0, 100, hot_start=150, hot_width=10)
        sample = h.sample(rng, 1000)
        assert sample.min() >= 0 and sample.max() <= 100
