"""Trace-to-generator synthesis (§V-C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.distributions import ZipfDistribution
from repro.workloads.synthesizer import (
    evaluate_fit,
    fit_arrivals,
    fit_distribution,
    fit_workload,
)


class TestFitDistribution:
    def test_reproduces_normal(self, rng):
        sample = rng.normal(100, 10, 8000)
        fitted = fit_distribution(sample)
        report = evaluate_fit(sample, fitted)
        assert report.ks_distance < 0.05
        assert report.high_fidelity

    def test_reproduces_zipf(self, rng):
        sample = ZipfDistribution(0, 1000, theta=1.0, n_items=200).sample(rng, 8000)
        fitted = fit_distribution(sample)
        assert evaluate_fit(sample, fitted).ks_distance < 0.06

    def test_reproduces_bimodal(self, rng):
        sample = np.concatenate([rng.normal(0, 1, 4000), rng.normal(50, 1, 4000)])
        fitted = fit_distribution(sample)
        synth = fitted.sample(rng, 4000)
        # Nothing generated in the empty middle band (beyond smoothing dust).
        assert ((synth > 10) & (synth < 40)).mean() < 0.02

    def test_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_distribution([1.0])

    def test_constant_sample_ok(self):
        fitted = fit_distribution([5.0, 5.0, 5.0])
        assert fitted.low <= 5.0 <= fitted.high


class TestFitArrivals:
    def test_reproduces_rate_profile(self, rng):
        # 10/s for 30s then 50/s for 30s.
        t1 = np.sort(rng.uniform(0, 30, 300))
        t2 = np.sort(rng.uniform(30, 60, 1500))
        process = fit_arrivals(np.concatenate([t1, t2]), window=10.0)
        assert process.rate(5.0) == pytest.approx(10.0, rel=0.3)
        assert process.rate(45.0) == pytest.approx(50.0, rel=0.3)

    def test_empty_trace(self):
        assert fit_arrivals([]).rate(0.0) == 0.0

    def test_rejects_bad_window(self, rng):
        with pytest.raises(ConfigurationError):
            fit_arrivals(rng.uniform(0, 10, 100), window=0.0)


class TestFitWorkload:
    def test_round_trip(self, rng):
        keys = rng.lognormal(5, 1, 5000)
        times = np.sort(rng.uniform(0, 60, 5000))
        spec, report = fit_workload("synth", keys, timestamps=times)
        assert spec.name == "synth"
        assert report.high_fidelity
        # The fitted workload samples keys in the observed range.
        sample = spec.key_drift.at(0.0).sample(rng, 100)
        assert sample.min() >= keys.min() - 1.0
        assert sample.max() <= keys.max() + 1.0

    def test_default_arrivals_without_timestamps(self, rng):
        keys = rng.uniform(0, 1, 600)
        spec, _ = fit_workload("synth", keys)
        assert spec.arrivals.rate(0.0) == pytest.approx(10.0)


class TestFitWorkloadEdgeCases:
    def test_empty_trace_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="empty trace"):
            fit_workload("synth", [])

    def test_single_row_trace_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="single-row trace"):
            fit_workload("synth", [42.0])

    def test_non_finite_keys_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="non-finite"):
            fit_workload("synth", [1.0, np.nan, 3.0])

    def test_explicit_mix_passthrough(self, rng):
        from repro.workloads.generators import KVOperation, OperationMix

        mix = OperationMix(
            {KVOperation.READ: 0.7, KVOperation.SCAN: 0.3}
        )
        spec, _ = fit_workload(
            "synth", rng.uniform(0, 100, 500), mix=mix, scan_length_mean=12
        )
        assert spec.mix.proportions() == mix.proportions()
        assert spec.scan_length_mean == 12
