"""YCSB preset correctness."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads.generators import KVOperation, KVWorkload
from repro.workloads.ycsb import ycsb_workload


class TestPresets:
    @pytest.mark.parametrize("letter", list("ABCDEF"))
    def test_all_workloads_build(self, letter):
        spec = ycsb_workload(letter, rate=10.0)
        assert spec.name == f"ycsb-{letter.lower()}"

    def test_case_insensitive(self):
        assert ycsb_workload("a").name == "ycsb-a"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            ycsb_workload("Z")

    def test_a_mix(self):
        props = ycsb_workload("A").mix.proportions()
        assert props[KVOperation.READ] == pytest.approx(0.5)
        assert props[KVOperation.UPDATE] == pytest.approx(0.5)

    def test_c_read_only(self):
        props = ycsb_workload("C").mix.proportions()
        assert props == {KVOperation.READ: 1.0}

    def test_e_scan_heavy_with_length(self):
        spec = ycsb_workload("E")
        assert spec.mix.proportions()[KVOperation.SCAN] == pytest.approx(0.95)
        assert spec.scan_length_mean == 50

    def test_f_has_rmw(self):
        props = ycsb_workload("F").mix.proportions()
        assert props[KVOperation.READ_MODIFY_WRITE] == pytest.approx(0.5)

    def test_uniform_keys_flag(self, rng):
        spec = ycsb_workload("C", uniform_keys=True, low=0, high=100)
        sample = spec.key_drift.at(0.0).sample(rng, 2000)
        import numpy as np

        hist, _ = np.histogram(sample, bins=10, range=(0, 100))
        assert hist.std() / hist.mean() < 0.2

    def test_generates_expected_ops(self):
        spec = ycsb_workload("D", rate=200.0)
        queries = KVWorkload(spec, seed=1).generate(0.0, 5.0)
        ops = {q.op for q in queries}
        assert ops == {KVOperation.READ, KVOperation.INSERT}
