"""Dataset/workload quality scorer (§V-C tool)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads.distributions import UniformDistribution, ZipfDistribution
from repro.workloads.drift import GradualDrift, NoDrift
from repro.workloads.generators import OperationMix, WorkloadSpec, simple_spec
from repro.workloads.patterns import DiurnalArrivals
from repro.workloads.quality import score_dataset, score_workload


class TestDatasetScoring:
    def test_uniform_scores_low(self, rng):
        report = score_dataset(rng.uniform(0, 1, 10_000))
        assert report.overall < 0.2
        assert report.grade() in ("D", "F")

    def test_skewed_scores_higher_than_uniform(self, rng):
        uniform = score_dataset(rng.uniform(0, 1, 10_000))
        skewed = score_dataset(rng.lognormal(0, 2, 10_000))
        assert skewed.overall > uniform.overall

    def test_zipf_beats_uniform(self, rng):
        z = ZipfDistribution(0, 1, theta=1.3, n_items=200)
        uniform = score_dataset(rng.uniform(0, 1, 10_000))
        zipf = score_dataset(z.sample(rng, 10_000))
        assert zipf.overall > uniform.overall

    def test_constant_data_degenerate_max(self):
        report = score_dataset([5.0] * 100)
        assert report.overall == 1.0

    def test_requires_two_points(self):
        with pytest.raises(ConfigurationError):
            score_dataset([1.0])

    def test_components_in_unit_range(self, rng):
        report = score_dataset(rng.normal(0, 1, 5000))
        for value in (report.non_uniformity, report.multimodality,
                      report.tail_weight, report.overall):
            assert 0.0 <= value <= 1.0


class TestWorkloadScoring:
    def test_static_uniform_scores_low(self):
        spec = simple_spec("s", UniformDistribution(0, 1), rate=10.0)
        report = score_workload(spec)
        assert report.overall < 0.3

    def test_drifting_scores_higher(self):
        static = simple_spec("s", UniformDistribution(0, 1), rate=10.0)
        drifting = WorkloadSpec(
            "d",
            OperationMix.read_only(),
            GradualDrift(
                UniformDistribution(0, 1),
                ZipfDistribution(5, 6, theta=1.2, n_items=100),
                0.0,
                600.0,
            ),
            DiurnalArrivals(10.0, 0.8, period=600.0),
        )
        assert score_workload(drifting).overall > score_workload(static).overall

    def test_load_variation_detected(self):
        steady = simple_spec("s", UniformDistribution(0, 1), rate=10.0)
        wavy = WorkloadSpec(
            "w",
            OperationMix.read_only(),
            NoDrift(UniformDistribution(0, 1)),
            DiurnalArrivals(10.0, 0.9, period=100.0),
        )
        assert (
            score_workload(wavy).load_variation
            > score_workload(steady).load_variation
        )

    def test_requires_two_probes(self):
        spec = simple_spec("s", UniformDistribution(0, 1), rate=10.0)
        with pytest.raises(ConfigurationError):
            score_workload(spec, probes=1)

    def test_deterministic(self):
        spec = simple_spec("s", UniformDistribution(0, 1), rate=10.0)
        assert score_workload(spec, seed=5) == score_workload(spec, seed=5)
