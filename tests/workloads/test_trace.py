"""Trace format, loader validation, replay machinery, and round trip."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DriverError, TraceFormatError
from repro.workloads.generators import KV_OP_CODES, KVOperation, KVWorkload
from repro.workloads.patterns import ConstantArrivals
from repro.workloads.synthesizer import fit_workload
from repro.workloads.trace import (
    TRACE_FORMAT_VERSION,
    QueryTrace,
    TraceArrivalProcess,
    TraceWorkload,
    TraceWorkloadSpec,
    fit_trace_workload,
    load_trace,
    replay_duration,
    round_trip,
    save_trace,
    trace_spec,
)


def make_trace(n=50, seed=3, span=20.0, name="t") -> QueryTrace:
    """Deterministic mixed-op trace for tests."""
    rng = np.random.default_rng(seed)
    ts = np.sort(rng.uniform(0.0, span, n))
    ops = rng.choice([0, 1, 2, 3, 4], size=n,
                     p=[0.5, 0.1, 0.2, 0.15, 0.05]).astype(np.int8)
    keys = rng.normal(100.0, 25.0, n)
    scans = np.where(ops == 3, rng.integers(1, 9, n), 0).astype(np.int64)
    return QueryTrace(ts, ops, keys, scans, name=name)


class TestQueryTraceValidation:
    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError, match="at least one row"):
            QueryTrace(np.empty(0), np.empty(0, np.int8), np.empty(0),
                       np.empty(0, np.int64))

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceFormatError, match="length mismatch"):
            QueryTrace([0.0, 1.0], [0], [1.0, 2.0], [0, 0])

    def test_backwards_timestamps_rejected(self):
        with pytest.raises(TraceFormatError, match="non-decreasing"):
            QueryTrace([1.0, 0.5], [0, 0], [1.0, 2.0], [0, 0])

    def test_non_finite_rejected(self):
        with pytest.raises(TraceFormatError, match="finite"):
            QueryTrace([0.0, np.nan], [0, 0], [1.0, 2.0], [0, 0])
        with pytest.raises(TraceFormatError, match="finite"):
            QueryTrace([0.0, 1.0], [0, 0], [1.0, np.inf], [0, 0])

    def test_bad_op_code_rejected(self):
        with pytest.raises(TraceFormatError, match="op codes"):
            QueryTrace([0.0, 1.0], [0, 9], [1.0, 2.0], [0, 0])

    def test_negative_scan_rejected(self):
        with pytest.raises(TraceFormatError, match="scan lengths"):
            QueryTrace([0.0, 1.0], [0, 0], [1.0, 2.0], [0, -1])

    def test_trace_format_error_is_configuration_error(self):
        assert issubclass(TraceFormatError, ConfigurationError)


class TestContentHash:
    def test_sensitive_to_every_column(self):
        base = make_trace()
        baseline = base.content_hash()
        for mutate in (
            lambda t: QueryTrace(t.timestamps + 1e-9, t.ops, t.keys,
                                 t.scan_lengths),
            lambda t: QueryTrace(t.timestamps,
                                 np.where(np.arange(t.n) == 0, 1, t.ops),
                                 t.keys, t.scan_lengths),
            lambda t: QueryTrace(t.timestamps, t.ops, t.keys + 1e-9,
                                 t.scan_lengths),
            lambda t: QueryTrace(t.timestamps, t.ops, t.keys,
                                 t.scan_lengths + 1),
        ):
            assert mutate(base).content_hash() != baseline

    def test_name_and_source_do_not_participate(self):
        base = make_trace()
        renamed = QueryTrace(base.timestamps, base.ops, base.keys,
                             base.scan_lengths, name="other", source="/x/y.csv")
        assert renamed.content_hash() == base.content_hash()

    def test_describe_carries_hash_and_histogram(self):
        trace = make_trace()
        info = trace.describe()
        assert info["version"] == TRACE_FORMAT_VERSION
        assert info["content_hash"] == trace.content_hash()
        assert sum(info["ops"].values()) == trace.n


class TestTransforms:
    def test_rebased_starts_at_zero(self):
        trace = make_trace()
        shifted = QueryTrace(trace.timestamps + 100.0, trace.ops, trace.keys,
                             trace.scan_lengths)
        rebased = shifted.rebased()
        assert rebased.timestamps[0] == 0.0
        assert rebased.span == shifted.span

    def test_rebased_identity_when_already_zero(self):
        trace = make_trace().rebased()
        assert trace.rebased() is trace

    def test_dilated_scales_span(self):
        trace = make_trace().rebased()
        assert abs(trace.dilated(2.0).span - 2.0 * trace.span) < 1e-9
        assert trace.dilated(1.0) is trace

    def test_dilated_rejects_bad_factor(self):
        trace = make_trace()
        for factor in (0.0, -1.0, np.nan, np.inf):
            with pytest.raises(ConfigurationError):
                trace.dilated(factor)

    def test_truncated_by_queries(self):
        trace = make_trace(n=40)
        cut = trace.truncated(max_queries=10)
        assert cut.n == 10
        assert np.array_equal(cut.keys, trace.keys[:10])
        assert trace.truncated(max_queries=400) is trace

    def test_truncated_by_span(self):
        trace = make_trace().rebased()
        cut = trace.truncated(max_span=trace.span / 2)
        assert cut.n < trace.n
        assert cut.timestamps[-1] <= trace.span / 2

    def test_truncated_rejects_bad_limits(self):
        trace = make_trace()
        with pytest.raises(ConfigurationError):
            trace.truncated(max_queries=0)
        with pytest.raises(ConfigurationError):
            trace.truncated(max_span=-1.0)

    def test_replay_duration_covers_every_arrival(self):
        trace = make_trace().rebased()
        assert replay_duration(trace) > trace.timestamps[-1]


class TestOnDiskFormat:
    def test_csv_round_trip_bitwise(self, tmp_path):
        trace = make_trace()
        path = save_trace(trace, tmp_path / "t.csv")
        loaded = load_trace(path)
        for attr in ("timestamps", "ops", "keys", "scan_lengths"):
            assert np.array_equal(getattr(trace, attr), getattr(loaded, attr))
        assert loaded.content_hash() == trace.content_hash()
        assert loaded.name == "t"
        assert loaded.source == str(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_trace(tmp_path / "nope.csv")

    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "t.dat"
        path.write_text("x")
        with pytest.raises(ConfigurationError, match="infer trace format"):
            load_trace(path)

    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# repro-trace v99\ntimestamp,op,key\n0.0,read,1.0\n")
        with pytest.raises(TraceFormatError, match="v99"):
            load_trace(path)

    def test_bad_version_comment_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# some junk\ntimestamp,op,key\n0.0,read,1.0\n")
        with pytest.raises(TraceFormatError, match="version comment"):
            load_trace(path)

    def test_version_comment_optional(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("timestamp,op,key\n0.0,read,1.0\n0.5,update,2.0\n")
        trace = load_trace(path)
        assert trace.n == 2
        assert trace.scan_lengths.tolist() == [0, 0]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("time,operation,key\n0.0,read,1.0\n")
        with pytest.raises(TraceFormatError, match="bad header"):
            load_trace(path)

    def test_unknown_op_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("timestamp,op,key\n0.0,delete,1.0\n")
        with pytest.raises(TraceFormatError, match="unknown op 'delete'"):
            load_trace(path)

    def test_non_numeric_field_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("timestamp,op,key\nabc,read,1.0\n")
        with pytest.raises(TraceFormatError, match="row 1"):
            load_trace(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("timestamp,op,key\n0.0,read\n")
        with pytest.raises(TraceFormatError, match="fields"):
            load_trace(path)

    def test_no_data_rows_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("timestamp,op,key\n")
        with pytest.raises(TraceFormatError, match="no data rows"):
            load_trace(path)

    def test_backwards_rows_rejected_on_load(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(
            "timestamp,op,key\n1.0,read,1.0\n0.5,read,2.0\n"
        )
        with pytest.raises(TraceFormatError, match="non-decreasing"):
            load_trace(path)

    def test_parquet_requires_pyarrow_message(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
            pytest.skip("pyarrow installed; gate not reachable")
        except ImportError:
            pass
        with pytest.raises(ConfigurationError, match="pyarrow"):
            save_trace(make_trace(), tmp_path / "t.parquet")

    def test_parquet_round_trip(self, tmp_path):
        pytest.importorskip("pyarrow")
        trace = make_trace()
        path = save_trace(trace, tmp_path / "t.parquet")
        loaded = load_trace(path)
        assert loaded.content_hash() == trace.content_hash()


class TestTraceArrivalProcess:
    def test_arrivals_exact_and_rng_free(self, rng):
        trace = make_trace().rebased()
        process = TraceArrivalProcess(trace)
        out_a = process.arrivals(rng, 0.0, replay_duration(trace), jitter=True)
        out_b = process.arrivals(np.random.default_rng(0), 0.0,
                                 replay_duration(trace), jitter=False)
        assert np.array_equal(out_a, trace.timestamps)
        assert np.array_equal(out_a, out_b)

    def test_window_slicing(self, rng):
        trace = make_trace().rebased()
        process = TraceArrivalProcess(trace)
        mid = trace.span / 2
        head = process.arrivals(rng, 0.0, mid)
        tail = process.arrivals(rng, mid, trace.span + 1.0)
        assert head.size + tail.size == trace.n
        assert np.array_equal(np.concatenate([head, tail]), trace.timestamps)

    def test_projected_count_matches_arrivals(self, rng):
        trace = make_trace().rebased()
        process = TraceArrivalProcess(trace)
        for start, end in ((0.0, 5.0), (5.0, 5.0), (3.0, 30.0)):
            assert process.projected_count(start, end) == process.arrivals(
                rng, start, end
            ).size

    def test_empirical_rate(self):
        trace = QueryTrace([0.1, 0.2, 0.3, 5.0], [0, 0, 0, 0],
                           [1.0, 2.0, 3.0, 4.0], [0, 0, 0, 0])
        process = TraceArrivalProcess(trace)
        assert process.rate(0.0) == 3.0
        assert process.rate(2.0) == 0.0

    def test_describe_has_hash(self):
        trace = make_trace()
        info = TraceArrivalProcess(trace).describe()
        assert info["kind"] == "TraceArrivalProcess"
        assert info["content_hash"] == trace.content_hash()


class TestTraceWorkload:
    def test_replays_rows_positionally(self):
        trace = make_trace().rebased()
        workload = trace_spec(trace).build_workload(seed=123)
        assert isinstance(workload, TraceWorkload)
        batch = workload.next_batch(trace.timestamps)
        assert np.array_equal(batch.keys, trace.keys)
        assert np.array_equal(batch.ops, trace.ops)
        assert np.array_equal(batch.scan_lengths, trace.scan_lengths)
        assert workload.cursor == trace.n

    def test_seed_independent(self):
        trace = make_trace().rebased()
        spec = trace_spec(trace)
        a = spec.build_workload(seed=1).next_batch(trace.timestamps)
        b = spec.build_workload(seed=999).next_batch(trace.timestamps)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.ops, b.ops)

    def test_chunked_consumption_matches(self):
        trace = make_trace().rebased()
        spec = trace_spec(trace)
        whole = spec.build_workload().next_batch(trace.timestamps)
        chunked = spec.build_workload()
        parts = [chunked.next_batch(trace.timestamps[i:i + 7])
                 for i in range(0, trace.n, 7)]
        assert np.array_equal(
            np.concatenate([p.keys for p in parts]), whole.keys
        )

    def test_exhaustion_raises(self):
        trace = make_trace(n=5).rebased()
        workload = trace_spec(trace).build_workload()
        workload.next_batch(trace.timestamps)
        with pytest.raises(DriverError, match="exhausted"):
            workload.next_batch(np.asarray([99.0]))

    def test_next_query_advances_cursor(self):
        trace = make_trace(n=5).rebased()
        workload = trace_spec(trace).build_workload()
        query = workload.next_query(float(trace.timestamps[0]))
        assert query.key == float(trace.keys[0])
        assert workload.cursor == 1

    def test_sample_keys_probe_is_deterministic_and_side_effect_free(self):
        trace = make_trace().rebased()
        workload = trace_spec(trace).build_workload(seed=5)
        probe_a = workload.sample_keys(1.5, 32)
        probe_b = workload.sample_keys(1.5, 32)
        assert np.array_equal(probe_a, probe_b)
        assert workload.cursor == 0
        assert np.isin(probe_a, trace.keys).all()

    def test_requires_trace(self):
        spec = trace_spec(make_trace())
        spec.trace = None
        with pytest.raises(ConfigurationError):
            TraceWorkload(spec)


class TestTraceSpec:
    def test_mix_matches_histogram(self):
        trace = make_trace()
        spec = trace_spec(trace)
        assert isinstance(spec, TraceWorkloadSpec)
        props = spec.mix.proportions()
        hist = trace.op_histogram()
        for op, share in props.items():
            assert share == pytest.approx(hist[op.value] / trace.n)

    def test_scan_length_mean_from_trace(self):
        trace = make_trace()
        scan_mask = trace.ops == KV_OP_CODES[KVOperation.SCAN]
        expected = int(round(float(trace.scan_lengths[scan_mask].mean())))
        assert trace_spec(trace).scan_length_mean == expected

    def test_describe_embeds_trace_summary(self):
        trace = make_trace()
        info = trace_spec(trace).describe()
        assert info["trace"]["content_hash"] == trace.content_hash()
        assert info["arrivals"]["kind"] == "TraceArrivalProcess"

    def test_single_row_trace_spec_builds(self):
        trace = QueryTrace([1.0], [0], [5.0], [0])
        spec = trace_spec(trace)
        batch = spec.build_workload().next_batch(np.asarray([1.0]))
        assert batch.keys.tolist() == [5.0]


class TestRoundTrip:
    def test_report_is_deterministic(self):
        trace = make_trace(n=400, span=40.0)
        _, _, report_a = round_trip(trace, seed=9)
        _, _, report_b = round_trip(trace, seed=9)
        assert report_a.to_dict() == report_b.to_dict()

    def test_fitted_spec_is_parametric(self):
        trace = make_trace(n=200)
        spec, synthesis, report = round_trip(trace)
        assert "trace" not in spec.describe()
        assert 0.0 <= report.ks_keys <= 1.0
        assert 0.0 <= report.tv_ops <= 1.0
        assert report.phi == pytest.approx(
            0.5 * (report.ks_keys + report.tv_ops)
        )
        assert report.key_fit_ks == synthesis.ks_distance
        assert report.n_trace == trace.n

    def test_requires_two_rows(self):
        trace = QueryTrace([1.0], [0], [5.0], [0])
        with pytest.raises(ConfigurationError):
            round_trip(trace)

    def test_divergence_decreases_with_sample_size(self):
        # Fitted to more observations, the generator reproduces the key
        # distribution more faithfully — the §V-C claim, measured.
        reports = {}
        for n in (150, 4000):
            rng = np.random.default_rng(7)
            ts = np.sort(rng.uniform(0.0, 30.0, n))
            keys = rng.normal(500.0, 80.0, n)
            ops = np.zeros(n, dtype=np.int8)
            trace = QueryTrace(ts, ops, keys, np.zeros(n, dtype=np.int64))
            _, _, reports[n] = round_trip(trace, seed=3)
        assert reports[4000].ks_keys < reports[150].ks_keys

    def test_fit_trace_workload_carries_mix_and_scans(self):
        trace = make_trace(n=300)
        spec, _ = fit_trace_workload(trace)
        hist = trace.op_histogram()
        props = spec.mix.proportions()
        assert props[KVOperation.READ] == pytest.approx(
            hist["read"] / trace.n
        )
        assert spec.scan_length_mean == trace_spec(trace).scan_length_mean
        assert not isinstance(spec.arrivals, TraceArrivalProcess)


# -- hypothesis properties ------------------------------------------------------------


@st.composite
def traces(draw):
    """Small random-but-valid traces."""
    n = draw(st.integers(min_value=2, max_value=40))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    ts = np.cumsum(np.asarray(gaps, dtype=np.float64))
    ops = np.asarray(
        draw(st.lists(st.integers(min_value=0, max_value=4),
                      min_size=n, max_size=n)),
        dtype=np.int8,
    )
    keys = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                          allow_infinity=False),
                min_size=n, max_size=n,
            )
        ),
        dtype=np.float64,
    )
    scans = np.where(
        ops == 3,
        np.asarray(
            draw(st.lists(st.integers(min_value=1, max_value=64),
                          min_size=n, max_size=n)),
            dtype=np.int64,
        ),
        0,
    )
    return QueryTrace(ts, ops, keys, scans, name="hyp")


class TestHypothesisProperties:
    @settings(max_examples=30, deadline=None)
    @given(trace=traces())
    def test_csv_round_trip_is_bitwise(self, trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "t.csv"
        loaded = load_trace(save_trace(trace, path))
        assert loaded.content_hash() == trace.content_hash()
        for attr in ("timestamps", "ops", "keys", "scan_lengths"):
            assert np.array_equal(getattr(trace, attr), getattr(loaded, attr))

    @settings(max_examples=30, deadline=None)
    @given(trace=traces(), seed=st.integers(min_value=0, max_value=2**31))
    def test_replay_is_deterministic_at_any_seed(self, trace, seed):
        spec = trace_spec(trace.rebased())
        a = spec.build_workload(seed=seed).next_batch(spec.trace.timestamps)
        b = spec.build_workload(seed=seed).next_batch(spec.trace.timestamps)
        for attr in ("ops", "keys", "scan_lengths", "arrivals"):
            assert np.array_equal(getattr(a, attr), getattr(b, attr))

    @settings(max_examples=30, deadline=None)
    @given(
        trace=traces(),
        factor=st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    )
    def test_dilation_is_linear_in_timestamps(self, trace, factor):
        rebased = trace.rebased()
        dilated = rebased.dilated(factor)
        assert np.array_equal(dilated.timestamps, rebased.timestamps * factor)
        assert np.array_equal(dilated.keys, rebased.keys)
        assert np.array_equal(dilated.ops, rebased.ops)


class TestConstantArrivalsStillWork:
    def test_build_workload_base_hook(self):
        # The driver hook must hand back a plain KVWorkload for plain specs.
        spec = fit_workload("w", np.linspace(0, 100, 64).tolist())[0]
        workload = spec.build_workload(seed=4)
        assert type(workload) is KVWorkload
        reference = KVWorkload(spec, seed=4)
        times = ConstantArrivals(50.0).arrivals(
            np.random.default_rng(0), 0.0, 1.0, jitter=False
        )
        a = workload.next_batch(times.copy())
        b = reference.next_batch(times.copy())
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.ops, b.ops)
