"""Drift-factor axis: endpoint bit-identity, Φ monotonicity, determinism.

The blend layer (:func:`blend_specs` / :class:`DriftFactor`) promises
three things the rest of the benchmark leans on:

1. At factor 0 / 1 the blend *is* the base / target object, so query
   streams are byte-identical to the unblended scenario in every
   execution path (scalar, batched, streaming).
2. The computed Φ between the blended stream and the target is monotone
   non-increasing in the factor (and exactly linear for the analytic
   estimator, because a mixture CDF is affine in the mixing weight).
3. A fixed ``(seed, factor)`` pair pins the stream bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.streaming import load_spilled_columns
from repro.data.datasets import build_dataset
from repro.errors import ConfigurationError, ScenarioError
from repro.metrics.similarity import (
    expected_spec_phi,
    realized_spec_phi,
    scenario_phi,
)
from repro.scenarios import drift_axis, drift_axis_reference, drift_axis_specs
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import (
    HotspotDistribution,
    UniformDistribution,
)
from repro.workloads.drift import DriftFactor, GradualDrift, NoDrift
from repro.workloads.generators import (
    KVOperation,
    KVWorkload,
    OperationMix,
    WorkloadSpec,
    blend_mixes,
    blend_specs,
    simple_spec,
)
from repro.workloads.patterns import ConstantArrivals

COLUMNS = ("arrivals", "starts", "completions", "op_codes", "segment_codes")

factors = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
interior_factors = st.floats(
    min_value=0.01, max_value=0.99, allow_nan=False
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _base_spec() -> WorkloadSpec:
    return simple_spec(
        "pb-base",
        HotspotDistribution(0.0, 1000.0, 100.0, 100.0, 0.9),
        rate=400.0,
        read_fraction=1.0,
    )


def _target_spec() -> WorkloadSpec:
    return WorkloadSpec(
        name="pb-target",
        mix=OperationMix(
            {
                KVOperation.READ: 0.6,
                KVOperation.UPDATE: 0.25,
                KVOperation.INSERT: 0.1,
                KVOperation.SCAN: 0.05,
            }
        ),
        key_drift=NoDrift(
            HotspotDistribution(0.0, 1000.0, 800.0, 100.0, 0.9)
        ),
        arrivals=ConstantArrivals(400.0),
        scan_length_mean=8,
    )


def _batch(spec: WorkloadSpec, seed: int, n: int = 512):
    times = np.linspace(0.0, 1.0, n, endpoint=False)
    return KVWorkload(spec, seed=seed).next_batch(times)


def _assert_batches_equal(a, b):
    assert np.array_equal(a.ops, b.ops)
    assert np.array_equal(a.keys, b.keys)
    assert np.array_equal(a.scan_lengths, b.scan_lengths)
    assert np.array_equal(a.arrivals, b.arrivals)


class TestEndpointIdentity:
    """Factor 0 / 1 returns the original objects — streams byte-equal."""

    def test_blend_returns_base_object_at_zero(self):
        base, target = _base_spec(), _target_spec()
        assert blend_specs(base, target, 0.0) is base

    def test_blend_returns_target_object_at_one(self):
        base, target = _base_spec(), _target_spec()
        assert blend_specs(base, target, 1.0) is target

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_batched_stream_identical_at_endpoints(self, seed):
        base, target = _base_spec(), _target_spec()
        _assert_batches_equal(
            _batch(blend_specs(base, target, 0.0), seed), _batch(base, seed)
        )
        _assert_batches_equal(
            _batch(blend_specs(base, target, 1.0), seed),
            _batch(target, seed),
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_scalar_stream_identical_at_endpoints(self, seed):
        base, target = _base_spec(), _target_spec()
        for factor, reference in ((0.0, base), (1.0, target)):
            blended = blend_specs(base, target, factor)
            wl_a = KVWorkload(blended, seed=seed)
            wl_b = KVWorkload(reference, seed=seed)
            for i in range(64):
                t = i / 400.0
                qa, qb = wl_a.next_query(t), wl_b.next_query(t)
                assert (qa.op, qa.key, qa.scan_length) == (
                    qb.op,
                    qb.key,
                    qb.scan_length,
                )

    def test_drift_factor_endpoints_delegate(self, rng):
        lo = NoDrift(UniformDistribution(0.0, 1.0))
        hi = GradualDrift(
            UniformDistribution(0.0, 1.0),
            UniformDistribution(9.0, 10.0),
            start=0.0,
            duration=1.0,
        )
        times = np.linspace(0.0, 1.0, 256)
        for factor, reference in ((0.0, lo), (1.0, hi)):
            model = DriftFactor(lo, hi, factor)
            assert model.at(0.5).describe() == reference.at(0.5).describe()
            a = model.sample_at(np.random.default_rng(5), times)
            b = reference.sample_at(np.random.default_rng(5), times)
            assert np.array_equal(a, b)


class TestDriverPathEndpoints:
    """`drift_axis` at factor 0/1 matches the unblended reference
    scenario bit-for-bit in the scalar, batched, and streaming paths."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return build_dataset("uniform", n=2000, seed=3)

    def _pair(self, dataset, factor, endpoint):
        kwargs = dict(rate=200.0, segment_duration=2.0, train_budget=1.0)
        return (
            drift_axis(dataset, factor=factor, **kwargs),
            drift_axis_reference(dataset, endpoint=endpoint, **kwargs),
        )

    @pytest.mark.parametrize("factor,endpoint", [(0.0, "base"), (1.0, "target")])
    @pytest.mark.parametrize("batching", [False, True])
    def test_scalar_and_batched_columns(self, dataset, factor, endpoint, batching):
        axis, reference = self._pair(dataset, factor, endpoint)
        config = DriverConfig(use_batching=batching)
        run_a = VirtualClockDriver(config).run(TraditionalKVStore(), axis)
        run_b = VirtualClockDriver(config).run(TraditionalKVStore(), reference)
        for name in COLUMNS:
            assert np.array_equal(
                getattr(run_a.columns, name), getattr(run_b.columns, name)
            ), f"column {name!r} diverged at factor {factor}"
        assert run_a.columns.segment_vocab == run_b.columns.segment_vocab

    @pytest.mark.parametrize("factor,endpoint", [(0.0, "base"), (1.0, "target")])
    def test_streaming_columns(self, dataset, tmp_path, factor, endpoint):
        axis, reference = self._pair(dataset, factor, endpoint)
        spilled = {}
        for tag, scenario in (("axis", axis), ("ref", reference)):
            driver = VirtualClockDriver(DriverConfig(block_size=64))
            driver.run_streaming(
                TraditionalKVStore(),
                scenario,
                spill_dir=str(tmp_path / tag),
            )
            spilled[tag] = load_spilled_columns(str(tmp_path / tag))
        assert np.array_equal(spilled["axis"].arrivals, spilled["ref"].arrivals)
        assert np.array_equal(
            spilled["axis"].completions, spilled["ref"].completions
        )
        assert np.array_equal(spilled["axis"].op_codes, spilled["ref"].op_codes)


class TestPhiMonotone:
    """Φ to the target shrinks as the factor grows."""

    def test_analytic_phi_linear_in_factor(self):
        base, target = _base_spec(), _target_spec()
        full = expected_spec_phi(base, target)["phi"]
        assert full > 0.3
        for factor in (0.0, 0.25, 0.5, 0.75, 1.0):
            blended = blend_specs(base, target, factor)
            phi = expected_spec_phi(blended, target)["phi"]
            assert phi == pytest.approx((1.0 - factor) * full, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(
        f_lo=interior_factors,
        f_hi=interior_factors,
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_analytic_phi_monotone(self, f_lo, f_hi, seed):
        f_lo, f_hi = sorted((f_lo, f_hi))
        base, target = _base_spec(), _target_spec()
        phi_lo = expected_spec_phi(blend_specs(base, target, f_lo), target)
        phi_hi = expected_spec_phi(blend_specs(base, target, f_hi), target)
        assert phi_hi["phi"] <= phi_lo["phi"] + 1e-12

    def test_realized_phi_monotone_non_increasing(self):
        base, target = _base_spec(), _target_spec()
        phis = [
            realized_spec_phi(
                blend_specs(base, target, factor), target, n=2048, seed=11
            )["phi"]
            for factor in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        # Finite-sample noise stays well under the step between factors.
        assert all(b <= a + 0.02 for a, b in zip(phis, phis[1:]))
        assert phis[-1] == 0.0
        assert phis[0] > 0.3

    def test_scenario_phi_uses_first_and_last_segments(self):
        dataset = build_dataset("uniform", n=2000, seed=3)
        at_zero = scenario_phi(
            drift_axis(dataset, factor=0.0, rate=200.0, segment_duration=2.0),
            n=1024,
        )
        at_one = scenario_phi(
            drift_axis(dataset, factor=1.0, rate=200.0, segment_duration=2.0),
            n=1024,
        )
        assert at_one["phi"] > at_zero["phi"]
        assert at_zero["phi"] == 0.0


class TestDeterminism:
    """Fixed (seed, factor) pins the stream bit-for-bit."""

    @settings(max_examples=20, deadline=None)
    @given(factor=factors, seed=seeds)
    def test_same_seed_same_stream(self, factor, seed):
        base, target = _base_spec(), _target_spec()
        spec = blend_specs(base, target, factor)
        _assert_batches_equal(_batch(spec, seed), _batch(spec, seed))

    @settings(max_examples=10, deadline=None)
    @given(factor=interior_factors, seed=st.integers(0, 1000))
    def test_rebuilt_blend_is_equivalent(self, factor, seed):
        """Blending twice from scratch yields the same stream — the
        blend carries no hidden mutable state."""
        a = blend_specs(_base_spec(), _target_spec(), factor)
        b = blend_specs(_base_spec(), _target_spec(), factor)
        _assert_batches_equal(_batch(a, seed), _batch(b, seed))

    def test_driver_paths_agree_at_interior_factor(self, tmp_path):
        dataset = build_dataset("uniform", n=2000, seed=3)
        scenario = drift_axis(
            dataset, factor=0.5, rate=200.0, segment_duration=2.0,
            train_budget=1.0,
        )
        scalar = VirtualClockDriver(DriverConfig(use_batching=False)).run(
            TraditionalKVStore(), scenario
        )
        batched = VirtualClockDriver(DriverConfig(use_batching=True)).run(
            TraditionalKVStore(), scenario
        )
        for name in COLUMNS:
            assert np.array_equal(
                getattr(scalar.columns, name), getattr(batched.columns, name)
            ), f"column {name!r} diverged between scalar and batched"
        driver = VirtualClockDriver(DriverConfig(block_size=64))
        driver.run_streaming(
            TraditionalKVStore(), scenario, spill_dir=str(tmp_path / "s")
        )
        spilled = load_spilled_columns(str(tmp_path / "s"))
        assert np.array_equal(spilled.arrivals, scalar.columns.arrivals)
        assert np.array_equal(spilled.completions, scalar.columns.completions)


class TestValidation:
    def test_blend_mixes_rejects_out_of_range(self):
        mix = OperationMix({KVOperation.READ: 1.0})
        for bad in (-0.1, 1.1):
            with pytest.raises(ConfigurationError):
                blend_mixes(mix, mix, bad)

    def test_blend_specs_rejects_out_of_range(self):
        base, target = _base_spec(), _target_spec()
        with pytest.raises(ConfigurationError):
            blend_specs(base, target, 1.5)

    def test_drift_factor_rejects_out_of_range(self):
        model = NoDrift(UniformDistribution(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            DriftFactor(model, model, -0.01)

    def test_axis_builder_rejects_out_of_range(self):
        dataset = build_dataset("uniform", n=500, seed=1)
        with pytest.raises(ConfigurationError):
            drift_axis(dataset, factor=2.0, rate=100.0, segment_duration=1.0)

    def test_scenario_field_rejects_out_of_range(self):
        from repro.core.phases import TrainingPhase
        from repro.core.scenario import Scenario, Segment

        spec = _base_spec()
        with pytest.raises(ScenarioError):
            Scenario(
                name="bad",
                segments=[Segment(spec=spec, duration=1.0)],
                initial_training=TrainingPhase(budget_seconds=0.1),
                seed=1,
                drift_factor=1.5,
            )

    def test_reference_rejects_unknown_endpoint(self):
        dataset = build_dataset("uniform", n=500, seed=1)
        with pytest.raises(ValueError):
            drift_axis_reference(dataset, endpoint="middle")

    def test_blended_mix_interpolates_proportions(self):
        base, target = _base_spec(), _target_spec()
        blended = blend_mixes(base.mix_at(0.0), target.mix_at(0.0), 0.5)
        props = blended.proportions()
        assert props[KVOperation.READ] == pytest.approx(0.8)
        assert props[KVOperation.UPDATE] == pytest.approx(0.125)

    def test_blend_schedules_none_without_schedules(self):
        from repro.workloads.generators import blend_schedules

        assert blend_schedules(_base_spec(), _target_spec(), 0.5) is None

    def test_blend_specs_blends_mix_schedules(self):
        from repro.workloads.generators import MixSchedule, blend_schedules

        read = OperationMix({KVOperation.READ: 1.0})
        update = OperationMix({KVOperation.UPDATE: 1.0})
        base = _base_spec()
        base.mix_schedule = MixSchedule([(0.0, read), (2.0, update)])
        target = _target_spec()
        schedule = blend_schedules(base, target, 0.5)
        assert [start for start, _ in schedule.segments] == [0.0, 2.0]
        # Before 2.0: 50/50 of pure-read and the target's 60% reads.
        early = schedule.at(0.0).proportions()
        assert early[KVOperation.READ] == pytest.approx(0.8)
        # After 2.0: the base side flips to pure updates.
        late = schedule.at(2.0).proportions()
        assert late[KVOperation.UPDATE] == pytest.approx(0.625)
        blended = blend_specs(base, target, 0.5)
        assert blended.mix_schedule is not None
        _assert_batches_equal(_batch(blended, 7), _batch(blended, 7))

    def test_specs_helper_matches_axis_segments(self):
        dataset = build_dataset("uniform", n=500, seed=1)
        base, target = drift_axis_specs(dataset, rate=100.0)
        scenario = drift_axis(
            dataset, factor=0.3, rate=100.0, segment_duration=1.0
        )
        assert scenario.segments[0].spec.describe() == base.describe()
        assert scenario.drift_factor == pytest.approx(0.3)
