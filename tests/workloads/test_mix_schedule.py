"""Evolving operation mixes (MixSchedule)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.workloads.distributions import UniformDistribution
from repro.workloads.drift import NoDrift
from repro.workloads.generators import (
    KVOperation,
    KVWorkload,
    MixSchedule,
    OperationMix,
    WorkloadSpec,
)
from repro.workloads.patterns import ConstantArrivals


def _spec_with_schedule():
    schedule = MixSchedule(
        [
            (0.0, OperationMix.read_only()),
            (10.0, OperationMix({KVOperation.SCAN: 1.0})),
        ]
    )
    return WorkloadSpec(
        name="mix-drift",
        mix=OperationMix.read_only(),
        key_drift=NoDrift(UniformDistribution(0, 100)),
        arrivals=ConstantArrivals(50.0),
        scan_length_mean=10,
        mix_schedule=schedule,
    )


class TestMixSchedule:
    def test_switches_at_time(self):
        schedule = MixSchedule(
            [(0.0, OperationMix.read_only()),
             (5.0, OperationMix.read_write(0.5))]
        )
        early = schedule.at(4.9).proportions()
        late = schedule.at(5.0).proportions()
        assert early == {KVOperation.READ: 1.0}
        assert late[KVOperation.UPDATE] == pytest.approx(0.5)

    def test_before_first_entry_uses_first(self):
        schedule = MixSchedule([(10.0, OperationMix.read_only())])
        assert schedule.at(0.0).proportions() == {KVOperation.READ: 1.0}

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            MixSchedule([])

    def test_rejects_unordered(self):
        with pytest.raises(ConfigurationError):
            MixSchedule(
                [(5.0, OperationMix.read_only()), (0.0, OperationMix.read_only())]
            )


class TestSpecIntegration:
    def test_mix_at_prefers_schedule(self):
        spec = _spec_with_schedule()
        assert spec.mix_at(0.0).proportions() == {KVOperation.READ: 1.0}
        assert spec.mix_at(15.0).proportions() == {KVOperation.SCAN: 1.0}

    def test_generated_ops_follow_schedule(self):
        workload = KVWorkload(_spec_with_schedule(), seed=3)
        early_ops = {q.op for q in workload.generate(0.0, 5.0)}
        late_ops = {q.op for q in workload.generate(12.0, 17.0)}
        assert early_ops == {KVOperation.READ}
        assert late_ops == {KVOperation.SCAN}

    def test_signature_tracks_schedule(self):
        spec = _spec_with_schedule()
        assert spec.signature(0.0) != spec.signature(15.0)

    def test_describe_includes_schedule(self):
        payload = _spec_with_schedule().describe()
        assert payload["mix_schedule"]["kind"] == "MixSchedule"
        assert len(payload["mix_schedule"]["segments"]) == 2

    def test_without_schedule_uses_static_mix(self):
        spec = WorkloadSpec(
            name="static",
            mix=OperationMix.read_only(),
            key_drift=NoDrift(UniformDistribution(0, 1)),
            arrivals=ConstantArrivals(1.0),
        )
        assert spec.mix_at(1e9).proportions() == {KVOperation.READ: 1.0}
