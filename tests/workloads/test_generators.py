"""Query-stream generation: mixes, specs, signatures, reproducibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.distributions import UniformDistribution, ZipfDistribution
from repro.workloads.drift import GradualDrift, NoDrift
from repro.workloads.generators import (
    KVOperation,
    KVWorkload,
    OperationMix,
    WorkloadSpec,
    simple_spec,
)
from repro.workloads.patterns import ConstantArrivals


class TestOperationMix:
    def test_normalizes(self):
        mix = OperationMix({KVOperation.READ: 3.0, KVOperation.UPDATE: 1.0})
        props = mix.proportions()
        assert props[KVOperation.READ] == pytest.approx(0.75)

    def test_sample_respects_proportions(self, rng):
        mix = OperationMix({KVOperation.READ: 0.9, KVOperation.INSERT: 0.1})
        ops = [mix.sample(rng) for _ in range(2000)]
        read_share = sum(op == KVOperation.READ for op in ops) / len(ops)
        assert read_share == pytest.approx(0.9, abs=0.03)

    def test_read_only_helper(self, rng):
        mix = OperationMix.read_only()
        assert all(mix.sample(rng) == KVOperation.READ for _ in range(20))

    def test_read_write_helper_validates(self):
        with pytest.raises(ConfigurationError):
            OperationMix.read_write(1.5)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            OperationMix({})

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            OperationMix({KVOperation.READ: -1.0})


class TestWorkloadSignature:
    def test_identical_specs_same_signature(self):
        a = simple_spec("a", UniformDistribution(0, 1), read_fraction=0.5)
        b = simple_spec("b", UniformDistribution(0, 1), read_fraction=0.5)
        assert a.signature() == b.signature()

    def test_different_mix_different_signature(self):
        a = simple_spec("a", UniformDistribution(0, 1), read_fraction=1.0)
        b = simple_spec("b", UniformDistribution(0, 1), read_fraction=0.5)
        assert a.signature() != b.signature()

    def test_different_distribution_kind_differs(self):
        a = simple_spec("a", UniformDistribution(0, 1))
        b = simple_spec("b", ZipfDistribution(0, 1, n_items=10))
        assert a.signature() != b.signature()

    def test_signature_follows_drift(self):
        drift = GradualDrift(
            UniformDistribution(0, 1), ZipfDistribution(0, 1, n_items=10), 0.0, 10.0
        )
        spec = WorkloadSpec(
            "d", OperationMix.read_only(), drift, ConstantArrivals(10)
        )
        assert spec.signature(at_time=0.0) != spec.signature(at_time=20.0)


class TestKVWorkload:
    def test_generate_volume(self):
        spec = simple_spec("s", UniformDistribution(0, 100), rate=200.0)
        queries = KVWorkload(spec, seed=1).generate(0.0, 5.0)
        assert len(queries) == pytest.approx(1000, abs=2)

    def test_reproducible(self):
        spec = simple_spec("s", UniformDistribution(0, 100), rate=50.0)
        a = KVWorkload(spec, seed=9).generate(0.0, 4.0)
        b = KVWorkload(spec, seed=9).generate(0.0, 4.0)
        assert [(q.op, q.key) for q in a] == [(q.op, q.key) for q in b]

    def test_different_seeds_differ(self):
        spec = simple_spec("s", UniformDistribution(0, 100), rate=50.0)
        a = KVWorkload(spec, seed=1).generate(0.0, 2.0)
        b = KVWorkload(spec, seed=2).generate(0.0, 2.0)
        assert [q.key for q in a] != [q.key for q in b]

    def test_arrival_times_attached(self):
        spec = simple_spec("s", UniformDistribution(0, 100), rate=50.0)
        queries = KVWorkload(spec, seed=1).generate(3.0, 6.0)
        assert all(3.0 <= q.arrival_time < 6.0 for q in queries)

    def test_scan_lengths_positive(self):
        spec = simple_spec(
            "s", UniformDistribution(0, 100), rate=100.0,
            scan_fraction=1.0, scan_length_mean=20,
        )
        queries = KVWorkload(spec, seed=1).generate(0.0, 2.0)
        assert queries
        assert all(q.op == KVOperation.SCAN and 1 <= q.scan_length <= 40 for q in queries)

    def test_insert_keys_unique(self):
        spec = WorkloadSpec(
            "ins",
            OperationMix({KVOperation.INSERT: 1.0}),
            NoDrift(UniformDistribution(0, 100)),
            ConstantArrivals(100.0),
        )
        queries = KVWorkload(spec, seed=1).generate(0.0, 5.0)
        keys = [q.key for q in queries]
        assert len(set(keys)) == len(keys)

    def test_sample_keys_matches_distribution(self):
        spec = simple_spec("s", UniformDistribution(50, 60), rate=10.0)
        workload = KVWorkload(spec, seed=1)
        sample = workload.sample_keys(0.0, 500)
        assert sample.min() >= 50 and sample.max() <= 60

    def test_sample_keys_distinct_at_subsecond_times(self):
        """Probes milliseconds apart (or at negative t) must not collide
        (regression: seeding on ``int(t)`` made them identical)."""
        spec = simple_spec("s", UniformDistribution(0, 100), rate=10.0)
        workload = KVWorkload(spec, seed=1)
        probes = [
            workload.sample_keys(t, 64).tolist()
            for t in (0.0, 0.001, 0.002, -0.001, -1.5)
        ]
        for i, a in enumerate(probes):
            for b in probes[i + 1 :]:
                assert a != b

    def test_sample_keys_reproducible_per_seed(self):
        spec = simple_spec("s", UniformDistribution(0, 100), rate=10.0)
        a = KVWorkload(spec, seed=3).sample_keys(0.125, 64)
        b = KVWorkload(spec, seed=3).sample_keys(0.125, 64)
        c = KVWorkload(spec, seed=4).sample_keys(0.125, 64)
        assert a.tolist() == b.tolist()
        assert a.tolist() != c.tolist()


class TestQueryBatch:
    def _spec(self):
        return WorkloadSpec(
            "b",
            OperationMix(
                {
                    KVOperation.READ: 0.6,
                    KVOperation.INSERT: 0.2,
                    KVOperation.SCAN: 0.2,
                }
            ),
            NoDrift(UniformDistribution(0, 100)),
            ConstantArrivals(100.0),
            scan_length_mean=8,
        )

    def test_batch_columns_consistent_with_query_view(self):
        workload = KVWorkload(self._spec(), seed=2)
        times = np.linspace(0.0, 5.0, 400)
        batch = workload.next_batch(times)
        assert len(batch) == 400
        queries = list(batch.iter_queries())
        for i in (0, 17, 399):
            q = batch.query(i)
            assert q == queries[i]
            assert q.arrival_time == times[i]
        reads = [q for q in queries if q.op == KVOperation.READ]
        scans = [q for q in queries if q.op == KVOperation.SCAN]
        assert reads and scans
        assert all(1 <= q.scan_length <= 16 for q in scans)
        assert all(q.scan_length == 0 for q in reads)

    def test_batch_deterministic(self):
        times = np.linspace(0.0, 3.0, 200)
        a = KVWorkload(self._spec(), seed=5).next_batch(times)
        b = KVWorkload(self._spec(), seed=5).next_batch(times)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.scan_lengths, b.scan_lengths)

    def test_batch_insert_keys_unique(self):
        spec = WorkloadSpec(
            "ins",
            OperationMix({KVOperation.INSERT: 1.0}),
            NoDrift(UniformDistribution(0, 1)),
            ConstantArrivals(100.0),
        )
        batch = KVWorkload(spec, seed=1).next_batch(np.linspace(0, 5, 500))
        assert np.unique(batch.keys).size == batch.keys.size

    def test_empty_batch(self):
        batch = KVWorkload(self._spec(), seed=1).next_batch(np.empty(0))
        assert len(batch) == 0
        assert list(batch.iter_queries()) == []

    def test_slice_is_view(self):
        batch = KVWorkload(self._spec(), seed=1).next_batch(
            np.linspace(0, 2, 100)
        )
        part = batch.slice(10, 30)
        assert len(part) == 20
        assert np.shares_memory(part.keys, batch.keys)
        assert part.query(0) == batch.query(10)
