"""Drift models: transitions over virtual time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.distributions import UniformDistribution, ZipfDistribution
from repro.workloads.drift import (
    AbruptDrift,
    GradualDrift,
    GrowingSkewDrift,
    NoDrift,
    RotatingHotspotDrift,
)


class TestNoDrift:
    def test_same_distribution_always(self):
        dist = UniformDistribution(0, 1)
        drift = NoDrift(dist)
        assert drift.at(0.0) is dist
        assert drift.at(1e9) is dist


class TestAbruptDrift:
    def test_switches_at_change_times(self):
        d1, d2, d3 = (UniformDistribution(i, i + 1) for i in range(3))
        drift = AbruptDrift([d1, d2, d3], [10.0, 20.0])
        assert drift.at(9.999) is d1
        assert drift.at(10.0) is d2
        assert drift.at(19.999) is d2
        assert drift.at(20.0) is d3
        assert drift.at(1e6) is d3

    def test_validates_counts(self):
        with pytest.raises(ConfigurationError):
            AbruptDrift([UniformDistribution(0, 1)], [5.0])

    def test_validates_order(self):
        d = [UniformDistribution(0, 1)] * 3
        with pytest.raises(ConfigurationError):
            AbruptDrift(d, [20.0, 10.0])


class TestGradualDrift:
    def setup_method(self):
        self.before = UniformDistribution(0, 10)
        self.after = UniformDistribution(90, 100)
        self.drift = GradualDrift(self.before, self.after, start=10.0, duration=20.0)

    def test_pure_before_and_after(self):
        assert self.drift.at(5.0) is self.before
        assert self.drift.at(35.0) is self.after

    def test_mix_fraction_linear(self):
        assert self.drift.mix_fraction(10.0) == 0.0
        assert self.drift.mix_fraction(20.0) == pytest.approx(0.5)
        assert self.drift.mix_fraction(30.0) == 1.0

    def test_midpoint_samples_from_both(self, rng):
        mid = self.drift.at(20.0)
        sample = mid.sample(rng, 4000)
        low_share = (sample <= 10).mean()
        assert 0.4 < low_share < 0.6

    def test_rejects_zero_duration(self):
        with pytest.raises(ConfigurationError):
            GradualDrift(self.before, self.after, 0.0, 0.0)


class TestRotatingHotspot:
    def test_position_follows_phase(self):
        drift = RotatingHotspotDrift(0, 100, hot_width=5, period=100)
        assert drift.at(0.0).hot_start == pytest.approx(0.0)
        assert drift.at(25.0).hot_start == pytest.approx(25.0)
        assert drift.at(125.0).hot_start == pytest.approx(25.0)  # wraps

    def test_samples_track_position(self, rng):
        drift = RotatingHotspotDrift(0, 100, hot_width=5, period=100, hot_fraction=0.95)
        early = drift.at(10.0).sample(rng, 2000)
        late = drift.at(60.0).sample(rng, 2000)
        assert np.median(early) < np.median(late)


class TestGrowingSkew:
    def test_theta_ramps(self):
        drift = GrowingSkewDrift(0, 100, theta_start=0.0, theta_end=1.0, duration=100)
        assert drift.theta_at(0.0) == 0.0
        assert drift.theta_at(50.0) == pytest.approx(0.5)
        assert drift.theta_at(1e9) == 1.0

    def test_returns_zipf(self):
        drift = GrowingSkewDrift(0, 100, duration=100, n_items=50)
        assert isinstance(drift.at(50.0), ZipfDistribution)

    def test_caches_quantized_theta(self):
        drift = GrowingSkewDrift(0, 100, duration=100, n_items=50)
        assert drift.at(50.0) is drift.at(50.2)  # same rounded theta
