"""Arrival processes: rates and generated timestamp streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.patterns import (
    BurstyArrivals,
    CompositeArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    RampArrivals,
)


class TestConstant:
    def test_count_matches_rate(self, rng):
        times = ConstantArrivals(100.0).arrivals(rng, 0.0, 10.0)
        assert len(times) == pytest.approx(1000, abs=2)

    def test_times_sorted_and_in_range(self, rng):
        times = ConstantArrivals(50.0).arrivals(rng, 5.0, 8.0)
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 5.0 and times.max() < 8.0

    def test_no_jitter_evenly_spaced(self, rng):
        times = ConstantArrivals(10.0).arrivals(rng, 0.0, 2.0, jitter=False)
        gaps = np.diff(times)
        assert gaps.std() < 0.02

    def test_zero_rate(self, rng):
        assert len(ConstantArrivals(0.0).arrivals(rng, 0, 100)) == 0

    def test_empty_window(self, rng):
        assert len(ConstantArrivals(10.0).arrivals(rng, 5.0, 5.0)) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantArrivals(-1.0)


class TestDiurnal:
    def test_oscillates_around_base(self):
        d = DiurnalArrivals(base=100, amplitude=0.5, period=100)
        assert d.rate(25.0) == pytest.approx(150.0)
        assert d.rate(75.0) == pytest.approx(50.0)

    def test_never_negative(self):
        d = DiurnalArrivals(base=100, amplitude=1.0, period=100)
        for t in np.linspace(0, 200, 100):
            assert d.rate(float(t)) >= 0

    def test_total_volume_close_to_base(self, rng):
        d = DiurnalArrivals(base=100, amplitude=0.8, period=20)
        times = d.arrivals(rng, 0.0, 40.0)  # two full periods
        assert len(times) == pytest.approx(4000, rel=0.02)


class TestBursty:
    def test_burst_multiplies(self):
        b = BurstyArrivals(10.0, [(5.0, 2.0, 10.0)])
        assert b.rate(4.9) == 10.0
        assert b.rate(5.0) == 100.0
        assert b.rate(7.0) == 10.0

    def test_overlapping_bursts_compound(self):
        b = BurstyArrivals(10.0, [(0.0, 10.0, 2.0), (5.0, 10.0, 3.0)])
        assert b.rate(7.0) == 60.0

    def test_rejects_bad_burst(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(10.0, [(0.0, -1.0, 2.0)])


class TestRamp:
    def test_linear(self):
        r = RampArrivals(0.0, 100.0, 10.0)
        assert r.rate(0.0) == 0.0
        assert r.rate(5.0) == pytest.approx(50.0)
        assert r.rate(10.0) == 100.0
        assert r.rate(20.0) == 100.0  # clamps


class TestComposite:
    def test_segment_switching_with_local_clocks(self):
        comp = CompositeArrivals(
            [(0.0, ConstantArrivals(5.0)), (10.0, RampArrivals(0.0, 10.0, 10.0))]
        )
        assert comp.rate(5.0) == 5.0
        assert comp.rate(10.0) == 0.0  # ramp starts at its local t=0
        assert comp.rate(15.0) == pytest.approx(5.0)

    def test_rejects_unordered(self):
        with pytest.raises(ConfigurationError):
            CompositeArrivals(
                [(10.0, ConstantArrivals(1.0)), (0.0, ConstantArrivals(2.0))]
            )

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CompositeArrivals([])
