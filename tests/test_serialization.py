"""Scenario serialization round-trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    abrupt_shift,
    bursty_diurnal,
    gradual_shift,
    specialization_ladder,
)
from repro.serialization import (
    arrivals_from_dict,
    distribution_from_dict,
    drift_from_dict,
    mix_from_dict,
    scenario_from_dict,
    scenario_to_dict,
    spec_from_dict,
)
from repro.workloads.distributions import (
    HotspotDistribution,
    MixtureDistribution,
    NormalDistribution,
    PiecewiseDistribution,
    UniformDistribution,
    ZipfDistribution,
)
from repro.workloads.drift import (
    AbruptDrift,
    GradualDrift,
    GrowingSkewDrift,
    NoDrift,
    RotatingHotspotDrift,
)
from repro.workloads.generators import KVOperation, OperationMix
from repro.workloads.patterns import (
    BurstyArrivals,
    CompositeArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    RampArrivals,
)

ALL_DISTRIBUTIONS = [
    UniformDistribution(0, 100),
    ZipfDistribution(0, 100, theta=0.9, n_items=50),
    NormalDistribution(0, 100, mean=50, std=10),
    HotspotDistribution(0, 100, hot_start=10, hot_width=5, hot_fraction=0.8),
    PiecewiseDistribution(0, 100, [1, 2, 3]),
    MixtureDistribution(
        [UniformDistribution(0, 50), UniformDistribution(50, 100)], [1, 2]
    ),
]


class TestDistributionRoundTrip:
    @pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.name)
    def test_round_trip_preserves_cdf(self, dist, rng):
        clone = distribution_from_dict(json.loads(json.dumps(dist.describe())))
        grid = np.linspace(dist.low, dist.high, 50)
        assert np.allclose(clone.cdf(grid), dist.cdf(grid), atol=1e-9)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            distribution_from_dict({"kind": "nope"})


class TestDriftRoundTrip:
    DRIFTS = [
        NoDrift(UniformDistribution(0, 1)),
        AbruptDrift(
            [UniformDistribution(0, 1), UniformDistribution(1, 2)], [5.0]
        ),
        GradualDrift(UniformDistribution(0, 1), UniformDistribution(1, 2),
                     start=2.0, duration=3.0),
        RotatingHotspotDrift(0, 100, hot_width=5, period=60),
        GrowingSkewDrift(0, 100, theta_start=0.1, theta_end=1.0, duration=60),
    ]

    @pytest.mark.parametrize("drift", DRIFTS, ids=lambda d: type(d).__name__)
    def test_round_trip_same_distribution_at_times(self, drift, rng):
        clone = drift_from_dict(json.loads(json.dumps(drift.describe())))
        for t in (0.0, 2.5, 10.0, 100.0):
            original = drift.at(t).describe()
            rebuilt = clone.at(t).describe()
            assert original.get("kind") == rebuilt.get("kind")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            drift_from_dict({"kind": "nope"})


class TestArrivalsRoundTrip:
    PROCESSES = [
        ConstantArrivals(10.0),
        DiurnalArrivals(10.0, amplitude=0.5, period=100.0),
        BurstyArrivals(10.0, [(5.0, 2.0, 3.0)]),
        RampArrivals(0.0, 10.0, 20.0),
        CompositeArrivals([(0.0, ConstantArrivals(5.0)),
                           (10.0, ConstantArrivals(20.0))]),
    ]

    @pytest.mark.parametrize("process", PROCESSES,
                             ids=lambda p: type(p).__name__)
    def test_round_trip_same_rate_function(self, process):
        clone = arrivals_from_dict(json.loads(json.dumps(process.describe())))
        for t in np.linspace(0, 50, 20):
            assert clone.rate(float(t)) == pytest.approx(process.rate(float(t)))


class TestMixAndSpec:
    def test_mix_round_trip(self):
        mix = OperationMix(
            {KVOperation.READ: 0.7, KVOperation.SCAN: 0.2, KVOperation.INSERT: 0.1}
        )
        clone = mix_from_dict(mix.describe())
        assert clone.proportions() == pytest.approx(mix.proportions())

    def test_spec_round_trip_signature(self):
        from repro.workloads.generators import simple_spec

        spec = simple_spec("w", ZipfDistribution(0, 100, n_items=20), rate=5.0,
                           read_fraction=0.8)
        clone = spec_from_dict(json.loads(json.dumps(spec.describe())))
        assert clone.signature() == spec.signature()


class TestScenarioRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda ds: abrupt_shift(ds, rate=20.0, segment_duration=3.0),
            lambda ds: gradual_shift(ds, rate=20.0, total_duration=6.0),
            lambda ds: specialization_ladder(ds, rate=20.0, segment_duration=2.0)[0],
            lambda ds: bursty_diurnal(ds, base_rate=20.0, duration=6.0),
        ],
        ids=["abrupt", "gradual", "ladder", "bursty"],
    )
    def test_fingerprint_preserved(self, builder, tiny_dataset):
        scenario = builder(tiny_dataset)
        payload = json.loads(json.dumps(scenario_to_dict(scenario)))
        clone = scenario_from_dict(payload, initial_keys=tiny_dataset.keys)
        assert clone.fingerprint() == scenario.fingerprint()

    def test_round_trip_runs_identically(self, tiny_dataset):
        from repro.core.benchmark import Benchmark
        from repro.suts.kv_traditional import TraditionalKVStore

        scenario = abrupt_shift(tiny_dataset, rate=50.0, segment_duration=3.0)
        payload = json.loads(json.dumps(scenario_to_dict(scenario)))
        clone = scenario_from_dict(payload, initial_keys=tiny_dataset.keys)
        bench = Benchmark()
        a = bench.run(TraditionalKVStore(), scenario)
        b = bench.run(TraditionalKVStore(), clone)
        assert [q.completion for q in a.queries] == [
            q.completion for q in b.queries
        ]

    def test_missing_injection_rejected(self, tiny_dataset):
        from repro.core.scenario import Segment
        from repro.core.scenario import Scenario
        from repro.workloads.generators import simple_spec
        from repro.workloads.distributions import UniformDistribution

        scenario = Scenario(
            name="inj",
            segments=[
                Segment(
                    spec=simple_spec("w", UniformDistribution(0, 1), rate=5.0),
                    duration=2.0,
                    data_injection=np.asarray([1.0, 2.0]),
                )
            ],
            seed=1,
        )
        payload = scenario_to_dict(scenario)
        with pytest.raises(ConfigurationError):
            scenario_from_dict(payload)
        clone = scenario_from_dict(
            payload, data_injections={"w": np.asarray([1.0, 2.0])}
        )
        assert clone.segments[0].data_injection is not None


class TestDriftFactorRoundTrip:
    def _model(self, factor=0.25):
        from repro.workloads.drift import DriftFactor

        return DriftFactor(
            NoDrift(UniformDistribution(0, 1)),
            GradualDrift(UniformDistribution(0, 1), UniformDistribution(5, 6),
                         start=0.0, duration=4.0),
            factor,
        )

    def test_round_trip_preserves_structure_and_factor(self):
        model = self._model(0.25)
        clone = drift_from_dict(json.loads(json.dumps(model.describe())))
        assert clone.factor == 0.25
        assert clone.describe() == model.describe()

    def test_round_trip_samples_identically(self, rng):
        model = self._model(0.4)
        clone = drift_from_dict(json.loads(json.dumps(model.describe())))
        times = np.linspace(0.0, 4.0, 200)
        a = model.sample_at(np.random.default_rng(9), times)
        b = clone.sample_at(np.random.default_rng(9), times)
        assert np.array_equal(a, b)

    def test_scenario_with_drift_factor_round_trips(self, tiny_dataset):
        from repro.scenarios import drift_axis

        scenario = drift_axis(tiny_dataset, factor=0.25, rate=20.0,
                              segment_duration=2.0)
        payload = json.loads(json.dumps(scenario_to_dict(scenario)))
        clone = scenario_from_dict(payload, initial_keys=tiny_dataset.keys)
        assert clone.drift_factor == 0.25
        assert clone.fingerprint() == scenario.fingerprint()

    def test_scenario_without_field_stays_unset(self, tiny_dataset):
        scenario = abrupt_shift(tiny_dataset, rate=20.0, segment_duration=3.0)
        payload = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert "drift_factor" not in payload
        clone = scenario_from_dict(payload, initial_keys=tiny_dataset.keys)
        assert clone.drift_factor is None
