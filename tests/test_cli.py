"""Command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import SCENARIOS, build_parser, main
from repro.core.runner import RunManifest


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scenario == "abrupt-shift"
        assert "learned-kv" in args.sut

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scenario", "nope"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "osm" in out and "learned-kv" in out and "abrupt-shift" in out

    def test_quality_builtin(self, capsys):
        assert main(["quality", "uniform", "--keys", "5000"]) == 0
        out = capsys.readouterr().out
        assert "grade" in out

    def test_quality_from_file(self, tmp_path, capsys, rng):
        path = tmp_path / "keys.txt"
        np.savetxt(path, rng.lognormal(5, 2, 2000))
        assert main(["quality", str(path)]) == 0
        assert "overall" in capsys.readouterr().out

    def test_run_small(self, capsys):
        code = main([
            "run", "--scenario", "abrupt-shift", "--sut", "btree-kv",
            "--dataset", "uniform", "--keys", "2000",
            "--rate", "100", "--duration", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "btree-kv" in out and "adaptability" in out

    def test_run_unknown_sut(self, capsys):
        code = main([
            "run", "--sut", "no-such-store", "--dataset", "uniform",
            "--keys", "2000", "--rate", "50", "--duration", "2",
        ])
        assert code == 2

    def test_run_with_export(self, tmp_path, capsys):
        prefix = str(tmp_path / "out")
        code = main([
            "run", "--scenario", "bursty-diurnal", "--sut", "btree-kv",
            "--dataset", "uniform", "--keys", "2000",
            "--rate", "100", "--duration", "4",
            "--export-prefix", prefix,
        ])
        assert code == 0
        queries = (tmp_path / "out-btree-kv-queries.csv").read_text()
        assert queries.startswith("arrival,")

    def test_synthesize(self, tmp_path, capsys, rng):
        trace = tmp_path / "trace.txt"
        np.savetxt(trace, rng.normal(100, 10, 3000))
        out = tmp_path / "synthetic.txt"
        code = main(["synthesize", str(trace), "--out", str(out),
                     "--emit", "500"])
        assert code == 0
        synthetic = np.loadtxt(out)
        assert synthetic.size == 500
        assert 50 < synthetic.mean() < 150

    def test_every_scenario_builder_runs(self, tiny_dataset):
        for name, builder in SCENARIOS.items():
            scenario = builder(tiny_dataset, 50.0, 12.0)
            assert scenario.total_duration > 0, name


class TestRunMatrix:
    SMALL = [
        "--dataset", "uniform", "--keys", "2000",
        "--rate", "100", "--duration", "4",
    ]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["run-matrix"])
        assert args.workers is None
        assert args.cache_dir == ".repro-cache"
        assert not args.no_cache

    def test_matrix_cold_then_warm(self, tmp_path, capsys):
        argv = [
            "run-matrix", "--scenario", "abrupt-shift",
            "--sut", "btree-kv", "hash-kv", "--seeds", "1", "2",
            "--workers", "2", "--cache-dir", str(tmp_path / "cache"),
            "--manifest", str(tmp_path / "manifest.json"),
        ] + self.SMALL
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 executed" in out and "0 cached" in out
        manifest = RunManifest.load(str(tmp_path / "manifest.json"))
        assert len(manifest.jobs) == 4
        assert all(j.status == "ok" for j in manifest.jobs)

        assert main(argv) == 0  # second pass: all served from cache
        assert "4 cached" in capsys.readouterr().out

    def test_no_cache_flag(self, tmp_path, capsys):
        argv = [
            "run-matrix", "--sut", "btree-kv", "--no-cache",
            "--cache-dir", str(tmp_path / "cache"),
        ] + self.SMALL
        assert main(argv) == 0
        assert main(argv) == 0
        assert "1 executed, 0 cached" in capsys.readouterr().out

    def test_unknown_sut(self, capsys):
        assert main(["run-matrix", "--sut", "no-such"] + self.SMALL) == 2

    def test_drift_factor_parser_default(self):
        assert build_parser().parse_args(["run-matrix"]).drift_factors is None

    def test_drift_factor_sweep_stamps_phi(self, tmp_path, capsys):
        path = str(tmp_path / "manifest.json")
        argv = [
            "run-matrix", "--sut", "btree-kv",
            "--drift-factors", "0.0", "0.5", "1.0",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", path,
        ] + self.SMALL
        assert main(argv) == 0
        out = capsys.readouterr().out
        # One base scenario plus one drift-axis cell per factor.
        for label in ("drift-axis@0", "drift-axis@0.5", "drift-axis@1"):
            assert label in out
        assert "phi=" in out
        manifest = RunManifest.load(path)
        assert len(manifest.jobs) == 4
        axis = {
            j.scenario_name: j.phi for j in manifest.jobs
            if j.scenario_name.startswith("drift-axis")
        }
        assert set(axis) == {"drift-axis@0", "drift-axis@0.5", "drift-axis@1"}
        for phi in axis.values():
            assert {"phi", "phi_data", "phi_workload"} <= set(phi)
        # Φ between first and last segment shrinks as the blend
        # approaches the base workload.
        assert axis["drift-axis@0"]["phi"] < axis["drift-axis@1"]["phi"]

    def test_drift_factor_phi_survives_cache_hits(self, tmp_path, capsys):
        path = str(tmp_path / "manifest.json")
        argv = [
            "run-matrix", "--sut", "btree-kv", "--drift-factors", "0.5",
            "--cache-dir", str(tmp_path / "cache"), "--manifest", path,
        ] + self.SMALL
        assert main(argv) == 0
        first = {
            j.scenario_name: j.phi for j in RunManifest.load(path).jobs
        }
        capsys.readouterr()
        assert main(argv) == 0  # warm pass: all cached
        assert "cached" in capsys.readouterr().out
        second = {
            j.scenario_name: j.phi for j in RunManifest.load(path).jobs
        }
        assert first == second

    def test_drift_factor_out_of_range(self, capsys):
        argv = [
            "run-matrix", "--sut", "btree-kv", "--drift-factors", "1.5",
        ] + self.SMALL
        assert main(argv) == 2
        assert "must be in [0, 1]" in capsys.readouterr().err


class TestTraceCommand:
    SMALL = [
        "--dataset", "uniform", "--keys", "2000",
        "--rate", "100", "--duration", "4",
    ]

    def _write_manifest(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        assert main([
            "run-matrix", "--sut", "btree-kv", "learned-kv",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", path,
        ] + self.SMALL) == 0
        return path

    def test_rollup(self, tmp_path, capsys):
        path = self._write_manifest(tmp_path)
        capsys.readouterr()
        assert main(["trace", path]) == 0
        out = capsys.readouterr().out
        assert "traced jobs: 2/2" in out
        for phase in ("train", "adapt", "serve", "report"):
            assert phase in out
        assert "driver.queries" in out
        assert "kv.read_runs" in out

    def test_per_job_rows(self, tmp_path, capsys):
        path = self._write_manifest(tmp_path)
        capsys.readouterr()
        assert main(["trace", path, "--jobs"]) == 0
        out = capsys.readouterr().out
        assert "per-job phase seconds" in out
        assert "btree-kv×abrupt-shift" in out

    def test_missing_manifest(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_non_manifest_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"broken": true}')
        assert main(["trace", str(path)]) == 2
        assert "not a run-matrix manifest" in capsys.readouterr().err

    def test_untraced_manifest(self, tmp_path, capsys):
        """A manifest whose jobs were all cache hits still renders."""
        path = self._write_manifest(tmp_path)
        capsys.readouterr()
        assert main([
            "run-matrix", "--sut", "btree-kv", "learned-kv",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest", path,
        ] + self.SMALL) == 0
        capsys.readouterr()
        assert main(["trace", path, "--jobs"]) == 0
        out = capsys.readouterr().out
        assert "traced jobs: 0/2" in out


class TestScenarioFiles:
    def test_save_then_load_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "scenario.json")
        assert main([
            "run", "--scenario", "abrupt-shift", "--sut", "btree-kv",
            "--dataset", "uniform", "--keys", "2000",
            "--rate", "50", "--duration", "2",
            "--save-scenario", path,
        ]) == 0
        capsys.readouterr()
        assert main([
            "run", "--sut", "btree-kv", "--dataset", "uniform",
            "--keys", "2000", "--scenario-file", path,
        ]) == 0
        out = capsys.readouterr().out
        assert "loaded scenario" in out and "fingerprint" in out


class TestReplayCommand:
    FIXTURE = str(Path(__file__).parent / "fixtures" / "trace_small.csv")

    def test_parser_defaults(self):
        args = build_parser().parse_args(["replay", self.FIXTURE])
        assert args.sut == ["btree-kv"]
        assert args.dilate == 1.0
        assert not args.fit
        assert args.export_spec is None

    def test_replay_basic(self, capsys):
        assert main(["replay", self.FIXTURE]) == 0
        out = capsys.readouterr().out
        assert "640 queries" in out
        assert "btree-kv" in out
        assert "mean throughput" in out

    def test_replay_with_fit_and_export(self, tmp_path, capsys):
        spec_path = tmp_path / "fitted.json"
        code = main([
            "replay", self.FIXTURE, "--fit",
            "--export-spec", str(spec_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "synthesizer round trip" in out
        assert "stream KS (keys)" in out
        payload = json.loads(spec_path.read_text())
        assert payload["name"] == "trace_small-fit"
        assert "trace" not in payload  # fitted spec is fully parametric

    def test_replay_truncation_and_dilation(self, capsys):
        code = main([
            "replay", self.FIXTURE, "--max-queries", "100",
            "--dilate", "2.0",
        ])
        assert code == 0
        assert "replaying 100 queries" in capsys.readouterr().out

    def test_replay_missing_file(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "nope.csv")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_replay_invalid_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("timestamp,op,key\n1.0,read,1.0\n0.5,read,2.0\n")
        assert main(["replay", str(bad)]) == 2
        assert "non-decreasing" in capsys.readouterr().err

    def test_replay_unknown_sut(self, capsys):
        assert main(["replay", self.FIXTURE, "--sut", "no-such"]) == 2

    def test_run_matrix_trace_cell(self, tmp_path, capsys):
        code = main([
            "run-matrix", "--sut", "btree-kv",
            "--trace", self.FIXTURE, "--no-cache",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "btree-kv×replay:trace_small" in out
        assert "1 executed" in out

    def test_run_matrix_trace_parser_defaults(self):
        args = build_parser().parse_args(["run-matrix"])
        assert args.trace is None
        assert args.trace_dilate == 1.0
        assert args.scenario is None
