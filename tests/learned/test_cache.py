"""Cache policies: LRU, LFU, learned eviction."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.learned.cache import LearnedCache, LFUCache, LRUCache

ALL_CACHES = [LRUCache, LFUCache, LearnedCache]


@pytest.fixture(params=ALL_CACHES, ids=lambda c: c.__name__)
def cache(request):
    return request.param(capacity=4)


class TestCommonBehavior:
    def test_miss_then_hit(self, cache):
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_respected(self, cache):
        for i in range(10):
            cache.put(i, i)
        assert len(cache) <= 4
        assert cache.stats.evictions >= 6

    def test_update_existing_no_eviction(self, cache):
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.stats.evictions == 0

    def test_rejects_zero_capacity(self):
        for cls in ALL_CACHES:
            with pytest.raises(ConfigurationError):
                cls(capacity=0)

    def test_hit_rate(self, cache):
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestLRU:
    def test_evicts_least_recent(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.get("a")
        cache.put("c", 3)  # evicts b (freq 1 < a's 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1


class TestLearned:
    def test_scan_resistance(self, rng):
        """A one-pass scan should not wipe out the hot set as badly as LRU."""
        hot_keys = list(range(20))
        capacity = 30

        def run(cache):
            # Warm hot keys with several rounds.
            for _ in range(10):
                for k in hot_keys:
                    if cache.get(k) is None:
                        cache.put(k, k)
            # Scan pollution: 200 once-only keys.
            for k in range(1000, 1200):
                if cache.get(k) is None:
                    cache.put(k, k)
            # Measure hot-key survival.
            return sum(cache.get(k) is not None for k in hot_keys)

        learned_survivors = run(LearnedCache(capacity))
        lru_survivors = run(LRUCache(capacity))
        assert learned_survivors >= lru_survivors

    def test_zipf_hit_rate_reasonable(self, rng):
        cache = LearnedCache(100)
        keys = rng.zipf(1.3, 20_000) % 2000
        for k in keys:
            if cache.get(int(k)) is None:
                cache.put(int(k), k)
        assert cache.stats.hit_rate > 0.3

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            LearnedCache(10, ema_alpha=0.0)
