"""Knob auto-tuner."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.learned.tuner import KnobSpace, KnobTuner, tuning_cost_seconds


@pytest.fixture
def space():
    return KnobSpace.of(order=(4, 16, 64, 256), cache=(0, 1, 2))


class TestKnobSpace:
    def test_default_is_first_values(self, space):
        assert space.default() == {"order": 4, "cache": 0}

    def test_neighbors_one_step(self, space):
        config = {"order": 16, "cache": 1}
        neighbors = space.neighbors(config)
        assert {"order": 4, "cache": 1} in neighbors
        assert {"order": 64, "cache": 1} in neighbors
        assert {"order": 16, "cache": 0} in neighbors
        assert {"order": 16, "cache": 2} in neighbors
        assert len(neighbors) == 4

    def test_boundary_neighbors(self, space):
        neighbors = space.neighbors(space.default())
        assert len(neighbors) == 2  # only up-steps at the boundary

    def test_size(self, space):
        assert space.size() == 12

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            KnobSpace.of()
        with pytest.raises(ConfigurationError):
            KnobSpace.of(order=())


class TestTuner:
    @staticmethod
    def _objective(config):
        # Optimum at order=64, cache=2 (unimodal along each axis).
        return abs(config["order"] - 64) / 64 + abs(config["cache"] - 2)

    def test_finds_optimum(self, space):
        result = KnobTuner(space, self._objective, budget=32).tune()
        assert result.best == {"order": 64, "cache": 2}
        assert result.converged

    def test_budget_limits_evaluations(self, space):
        result = KnobTuner(space, self._objective, budget=3).tune()
        assert result.evaluation_count <= 3
        assert not result.converged or result.evaluation_count <= 3

    def test_never_reevaluates(self, space):
        calls = []

        def counting(config):
            calls.append(dict(config))
            return self._objective(config)

        KnobTuner(space, counting, budget=50).tune()
        keys = [tuple(sorted(c.items())) for c in calls]
        assert len(keys) == len(set(keys))

    def test_custom_start(self, space):
        result = KnobTuner(space, self._objective, budget=32).tune(
            start={"order": 256, "cache": 2}
        )
        assert result.best == {"order": 64, "cache": 2}

    def test_rejects_zero_budget(self, space):
        with pytest.raises(ConfigurationError):
            KnobTuner(space, self._objective, budget=0)

    def test_evaluation_log_ordered(self, space):
        result = KnobTuner(space, self._objective, budget=32).tune()
        assert result.evaluations[0][0] == space.default()
        best_seen = min(score for _, score in result.evaluations)
        assert result.best_score == best_seen


class TestTuningCost:
    def test_cost_scales_with_evaluations(self, space):
        result = KnobTuner(space, self._objective_flat, budget=10).tune()
        assert tuning_cost_seconds(result, probe_seconds=5.0) == (
            result.evaluation_count * 5.0
        )

    @staticmethod
    def _objective_flat(config):
        return 1.0

    def test_negative_probe_rejected(self, space):
        result = KnobTuner(space, self._objective_flat, budget=2).tune()
        with pytest.raises(ConfigurationError):
            tuning_cost_seconds(result, probe_seconds=-1.0)


class TestTunerOnRealStore:
    def test_tunes_btree_order_for_workload(self, tiny_dataset):
        """The tuner finds a better B+ tree order than the default."""
        from repro.suts.kv_traditional import TraditionalKVStore
        from repro.workloads.generators import KVOperation, KVQuery
        import numpy as np

        pairs = tiny_dataset.pairs()
        rng = np.random.default_rng(4)
        probe_keys = rng.choice(tiny_dataset.keys, 150)

        def objective(config):
            store = TraditionalKVStore(order=config["order"])
            store.setup(pairs)
            total = 0.0
            for key in probe_keys:
                total += store.execute(
                    KVQuery(op=KVOperation.READ, key=float(key)), 0.0
                )
            return total

        space = KnobSpace.of(order=(4, 8, 16, 32, 64, 128, 256))
        result = KnobTuner(space, objective, budget=8).tune()
        default_score = result.evaluations[0][1]
        assert result.best_score < default_score
        assert result.best["order"] > 4
