"""KS drift detector."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.learned.drift_detector import DriftDetector, DriftVerdict


class TestLifecycle:
    def test_insufficient_before_first_window(self):
        det = DriftDetector(window=64)
        verdicts = {det.observe(float(i)) for i in range(63)}
        assert verdicts == {DriftVerdict.INSUFFICIENT_DATA}

    def test_stable_on_same_distribution(self, rng):
        det = DriftDetector(window=128, threshold=0.2)
        verdicts = [det.observe(float(k)) for k in rng.uniform(0, 1, 1500)]
        assert DriftVerdict.DRIFTED not in verdicts
        assert det.checks > 0

    def test_detects_abrupt_shift(self, rng):
        det = DriftDetector(window=128, threshold=0.2)
        for k in rng.uniform(0, 1, 600):
            det.observe(float(k))
        verdicts = [det.observe(float(k)) for k in rng.uniform(10, 11, 300)]
        assert DriftVerdict.DRIFTED in verdicts
        assert det.drifts_detected >= 1

    def test_reset_reference_accepts_new_normal(self, rng):
        det = DriftDetector(window=128, threshold=0.2)
        for k in rng.uniform(0, 1, 300):
            det.observe(float(k))
        det.reset_reference(rng.uniform(10, 11, 256))
        verdicts = [det.observe(float(k)) for k in rng.uniform(10, 11, 300)]
        assert DriftVerdict.DRIFTED not in verdicts

    def test_reset_without_sample_relearns(self, rng):
        det = DriftDetector(window=64, threshold=0.2)
        for k in rng.uniform(0, 1, 100):
            det.observe(float(k))
        det.reset_reference()
        assert det.observe(0.5) == DriftVerdict.INSUFFICIENT_DATA


class TestSensitivity:
    def test_small_shift_below_threshold_ignored(self, rng):
        det = DriftDetector(window=256, threshold=0.5)
        for k in rng.uniform(0, 1, 600):
            det.observe(float(k))
        verdicts = [det.observe(float(k)) for k in rng.uniform(0.05, 1.05, 600)]
        assert DriftVerdict.DRIFTED not in verdicts

    def test_gradual_drift_eventually_detected(self, rng):
        det = DriftDetector(window=128, threshold=0.3)
        drifted = False
        for step in range(30):
            shift = step * 0.3
            for k in rng.uniform(shift, shift + 1, 128):
                if det.observe(float(k)) == DriftVerdict.DRIFTED:
                    drifted = True
        assert drifted


class TestValidation:
    def test_rejects_small_window(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(window=8)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            DriftDetector(threshold=1.5)


class TestDescribe:
    def test_exposes_threshold_and_window(self):
        det = DriftDetector(window=64, threshold=0.3)
        desc = det.describe()
        assert desc["kind"] == "DriftDetector"
        assert desc["window"] == 64
        assert desc["threshold"] == 0.3
        assert desc["checks"] == 0
        assert desc["drifts_detected"] == 0

    def test_counters_track_live_state(self, rng):
        det = DriftDetector(window=64, threshold=0.2)
        for k in rng.uniform(0, 1, 200):
            det.observe(float(k))
        det.observe_many(rng.uniform(10, 11, 128))
        desc = det.describe()
        assert desc["checks"] == det.checks > 0
        assert desc["drifts_detected"] == det.drifts_detected >= 1

    def test_describe_is_json_safe(self):
        import json

        json.dumps(DriftDetector().describe())
