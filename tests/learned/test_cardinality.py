"""Cardinality estimators: histograms, learned regression, oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.plans import Aggregate, Filter, Join, Scan
from repro.errors import NotTrainedError
from repro.learned.cardinality import (
    HistogramEstimator,
    LearnedCardinalityEstimator,
    TrueCardinalityOracle,
)


@pytest.fixture
def analyzed(orders_catalog):
    estimator = HistogramEstimator()
    estimator.analyze(orders_catalog, "orders")
    estimator.analyze(orders_catalog, "customers")
    return estimator


class TestHistogram:
    def test_scan_estimate_exact(self, analyzed, orders_catalog):
        assert analyzed.estimate(Scan("orders"), orders_catalog) == float(
            orders_catalog.row_count("orders")
        )

    def test_range_estimate_close(self, analyzed, orders_catalog):
        amounts = np.asarray(orders_catalog.get("orders").column("amount"))
        for threshold in (50.0, 150.0, 400.0):
            plan = Filter(Scan("orders"), col("amount") > threshold)
            estimate = analyzed.estimate(plan, orders_catalog)
            truth = float((amounts > threshold).sum())
            assert estimate == pytest.approx(truth, rel=0.25, abs=20)

    def test_join_estimate_order_of_magnitude(self, analyzed, orders_catalog):
        plan = Join(Scan("orders"), Scan("customers"), "cid", "cid")
        estimate = analyzed.estimate(plan, orders_catalog)
        truth = orders_catalog.row_count("orders")
        assert truth / 5 <= estimate <= truth * 5

    def test_unanalyzed_column_falls_back(self, orders_catalog):
        fresh = HistogramEstimator()
        plan = Filter(Scan("orders"), col("amount") > 100.0)
        estimate = fresh.estimate(plan, orders_catalog)
        expected = orders_catalog.row_count("orders") * HistogramEstimator.DEFAULT_SELECTIVITY
        assert estimate == pytest.approx(expected)

    def test_aggregate_estimates_one(self, analyzed, orders_catalog):
        plan = Aggregate(Scan("orders"), "count")
        assert analyzed.estimate(plan, orders_catalog) == 1.0

    def test_stale_statistics_drift(self, analyzed, orders_catalog):
        """Data changes after ANALYZE -> estimates go wrong (the classic
        failure learned estimators address)."""
        orders = orders_catalog.get("orders")
        rows = [
            {"oid": 10_000 + i, "cid": 0, "amount": 5000.0} for i in range(2000)
        ]
        orders.append_rows(rows)
        plan = Filter(Scan("orders"), col("amount") > 4000.0)
        estimate = analyzed.estimate(plan, orders_catalog)
        truth = float(
            (np.asarray(orders.column("amount")) > 4000.0).sum()
        )
        assert truth >= 2000
        assert estimate < truth / 3  # badly underestimates the new regime


class TestLearned:
    def _training_set(self, catalog):
        executor = Executor(catalog)
        plans, cards = [], []
        for threshold in np.linspace(10, 500, 30):
            plan = Filter(Scan("orders"), col("amount") > float(threshold))
            plans.append(plan)
            cards.append(float(executor.execute(plan).table.row_count))
        return plans, cards

    def test_estimate_before_training_raises(self, orders_catalog):
        model = LearnedCardinalityEstimator([("orders", "amount")])
        with pytest.raises(NotTrainedError):
            model.estimate(Scan("orders"), orders_catalog)

    def test_batch_training_low_q_error(self, orders_catalog):
        model = LearnedCardinalityEstimator([("orders", "amount")])
        model.bind_statistics(orders_catalog)
        plans, cards = self._training_set(orders_catalog)
        model.train_batch(plans, cards, orders_catalog)
        executor = Executor(orders_catalog)
        test_plan = Filter(Scan("orders"), col("amount") > 275.0)
        truth = executor.execute(test_plan).table.row_count
        assert model.q_error(test_plan, truth, orders_catalog) < 2.0

    def test_online_training_converges(self, orders_catalog):
        model = LearnedCardinalityEstimator([("orders", "amount")])
        model.bind_statistics(orders_catalog)
        plans, cards = self._training_set(orders_catalog)
        for _ in range(30):
            for plan, card in zip(plans, cards):
                model.observe(plan, card, orders_catalog)
        test_plan = Filter(Scan("orders"), col("amount") > 275.0)
        truth = Executor(orders_catalog).execute(test_plan).table.row_count
        assert model.q_error(test_plan, truth, orders_catalog) < 3.0

    def test_label_cost_accounted(self, orders_catalog):
        model = LearnedCardinalityEstimator([("orders", "amount")])
        model.bind_statistics(orders_catalog)
        plans, cards = self._training_set(orders_catalog)
        model.train_batch(plans, cards, orders_catalog)
        assert model.label_collection_rows == int(sum(cards))
        assert model.trained_examples == len(plans)

    def test_adapts_to_new_regime_online(self, orders_catalog):
        """After data drift, continued observation repairs the model."""
        model = LearnedCardinalityEstimator([("orders", "amount")])
        model.bind_statistics(orders_catalog)
        plans, cards = self._training_set(orders_catalog)
        model.train_batch(plans, cards, orders_catalog)
        # Drift: shift all cardinalities up by 3x (simulated new regime).
        drifted = [c * 3.0 for c in cards]
        test_plan, test_card = plans[15], drifted[15]
        q_before = model.q_error(test_plan, test_card, orders_catalog)
        for _ in range(60):
            for plan, card in zip(plans, drifted):
                model.observe(plan, card, orders_catalog)
        q_after = model.q_error(test_plan, test_card, orders_catalog)
        assert q_after < q_before


class TestOracle:
    def test_exact_and_costed(self, orders_catalog):
        oracle = TrueCardinalityOracle(orders_catalog)
        plan = Filter(Scan("orders"), col("amount") > 100.0)
        truth = Executor(orders_catalog).execute(plan).table.row_count
        assert oracle.estimate(plan, orders_catalog) == float(truth)
        assert oracle.rows_executed > 0
