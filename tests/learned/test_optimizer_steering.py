"""Bandit plan steering (Bao-style)."""

from __future__ import annotations

import pytest

from repro.engine.executor import Executor
from repro.engine.expressions import col
from repro.engine.plans import Filter, Join, Scan
from repro.learned.cardinality import HistogramEstimator
from repro.learned.optimizer import BanditPlanSteering


@pytest.fixture
def setup(orders_catalog):
    estimator = HistogramEstimator()
    estimator.analyze(orders_catalog, "orders")
    estimator.analyze(orders_catalog, "customers")
    steering = BanditPlanSteering(estimator, seed=3)
    plan = Join(
        Filter(Scan("orders"), col("amount") > 150.0),
        Scan("customers"),
        "cid",
        "cid",
    )
    return steering, plan, orders_catalog


class TestChoose:
    def test_choice_is_executable(self, setup):
        steering, plan, catalog = setup
        choice = steering.choose(plan, catalog)
        result = Executor(catalog).execute(choice.plan_cost.plan)
        assert result.table.row_count >= 0

    def test_force_hash_arm_forces_method(self, setup):
        steering, plan, catalog = setup
        optimizer = steering._optimizer_for_arm(1)  # force-hash
        restricted = steering._restrict(plan, "hash")
        best = optimizer.optimize(restricted, catalog)
        assert "nl" not in best.plan.canonical()

    def test_decisions_counted(self, setup):
        steering, plan, catalog = setup
        for _ in range(5):
            steering.choose(plan, catalog)
        assert steering.decisions == 5
        assert sum(steering.arm_counts) == 5


class TestLearning:
    def test_converges_away_from_bad_arm(self, setup):
        """After feedback, the chronically slow arm loses share."""
        steering, plan, catalog = setup
        executor = Executor(catalog)
        for _ in range(60):
            choice = steering.choose(plan, catalog)
            result = executor.execute(choice.plan_cost.plan)
            steering.learn(choice, result.work, plan, catalog)
        counts = steering.arm_counts
        nl_share = counts[2] / sum(counts)  # force-nl is terrible here
        assert nl_share < 0.3

    def test_reset_learning_restores_exploration(self, setup):
        steering, plan, catalog = setup
        executor = Executor(catalog)
        for _ in range(30):
            choice = steering.choose(plan, catalog)
            steering.learn(choice, executor.execute(choice.plan_cost.plan).work,
                           plan, catalog)
        steering.reset_learning()
        # After reset, arms are symmetric again; choosing still works.
        choice = steering.choose(plan, catalog)
        assert choice.arm in range(len(steering.ARMS))

    def test_deterministic_with_seed(self, orders_catalog):
        estimator = HistogramEstimator()
        estimator.analyze(orders_catalog, "orders")
        plan = Filter(Scan("orders"), col("amount") > 100.0)
        a = BanditPlanSteering(estimator, seed=7).choose(plan, orders_catalog)
        b = BanditPlanSteering(estimator, seed=7).choose(plan, orders_catalog)
        assert a.arm == b.arm
