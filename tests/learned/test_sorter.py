"""Learned sorting: correctness always, speed when specialized."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.learned.sorter import LearnedSorter, comparison_sort_work


class TestCorrectness:
    def test_sorts_normal_data(self, rng):
        data = rng.normal(100, 15, 5000)
        out, report = LearnedSorter().sort(data)
        assert np.array_equal(out, np.sort(data))
        assert report.n == 5000

    def test_sorts_already_sorted(self):
        data = np.arange(1000, dtype=np.float64)
        out, _ = LearnedSorter().sort(data)
        assert np.array_equal(out, data)

    def test_sorts_reversed(self):
        data = np.arange(1000, dtype=np.float64)[::-1]
        out, _ = LearnedSorter().sort(data)
        assert np.array_equal(out, np.sort(data))

    def test_sorts_with_duplicates(self, rng):
        data = rng.integers(0, 50, 2000).astype(np.float64)
        out, _ = LearnedSorter().sort(data)
        assert np.array_equal(out, np.sort(data))

    def test_empty(self):
        out, report = LearnedSorter().sort([])
        assert out.size == 0 and report.work_units == 0

    def test_single(self):
        out, _ = LearnedSorter().sort([42.0])
        assert out.tolist() == [42.0]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_sorted(self, data):
        out, _ = LearnedSorter(sample_size=16).sort(data)
        assert np.array_equal(out, np.sort(np.asarray(data, dtype=np.float64)))


class TestPerformanceShape:
    def test_beats_nlogn_when_specialized(self, rng):
        data = rng.normal(1000, 100, 30_000)
        _, report = LearnedSorter().sort(data)
        assert report.work_units < comparison_sort_work(data.size)

    def test_mis_specialized_costs_more(self, rng):
        """A model fitted to yesterday's distribution pays on today's."""
        sorter = LearnedSorter().fit(rng.normal(1000, 100, 2048))
        in_dist = rng.normal(1000, 100, 20_000)
        shifted = rng.lognormal(9, 1.5, 20_000)
        _, report_in = sorter.sort(in_dist)
        _, report_out = sorter.sort(shifted)
        assert report_out.work_units > report_in.work_units
        assert report_out.max_bucket_fill > report_in.max_bucket_fill

    def test_overflow_buckets_on_mismatch(self, rng):
        sorter = LearnedSorter().fit(rng.uniform(0, 1, 2048))
        clustered = rng.normal(1e6, 1.0, 10_000)
        out, report = sorter.sort(clustered)
        assert np.array_equal(out, np.sort(clustered))
        assert report.overflow_buckets > 0


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            LearnedSorter(sample_size=1)
        with pytest.raises(ConfigurationError):
            LearnedSorter(bucket_size=1)
        with pytest.raises(ConfigurationError):
            LearnedSorter(overflow_factor=0.5)

    def test_comparison_work_monotone(self):
        assert comparison_sort_work(100) < comparison_sort_work(1000)
        assert comparison_sort_work(0) == 0.0
