"""PGM specifics: ε-bound guarantees, PLA construction, levels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.indexes.pgm import PGMIndex, build_pla


class TestPLA:
    def test_linear_data_one_segment(self):
        keys = np.arange(0, 1000, dtype=np.float64)
        segments = build_pla(keys, epsilon=4)
        assert len(segments) == 1

    def test_epsilon_guarantee(self, rng):
        """Every key's rank must be within ±ε of its segment prediction."""
        keys = np.unique(rng.lognormal(8, 2, 3000))
        epsilon = 16
        segments = build_pla(keys, epsilon=epsilon)
        boundaries = [s.key0 for s in segments]
        for rank, key in enumerate(keys):
            seg_idx = int(np.searchsorted(boundaries, key, side="right")) - 1
            seg_idx = max(0, seg_idx)
            predicted = segments[seg_idx].predict(float(key))
            assert abs(predicted - rank) <= epsilon + 1.0

    def test_smaller_epsilon_more_segments(self, rng):
        keys = np.unique(rng.lognormal(8, 2, 3000))
        tight = build_pla(keys, epsilon=4)
        loose = build_pla(keys, epsilon=256)
        assert len(tight) > len(loose)

    def test_empty_input(self):
        assert build_pla(np.empty(0), epsilon=8) == []

    def test_single_key(self):
        segments = build_pla(np.asarray([5.0]), epsilon=8)
        assert len(segments) == 1


class TestPGMIndex:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            PGMIndex(epsilon=0)

    def test_levels_collapse_to_one_root(self, small_pairs):
        pgm = PGMIndex(epsilon=8)
        pgm.bulk_load(small_pairs)
        assert pgm.levels >= 1
        assert len(pgm._levels[-1]) == 1

    def test_segment_count_property(self, small_pairs):
        pgm = PGMIndex(epsilon=8)
        pgm.bulk_load(small_pairs)
        assert pgm.segment_count >= 1

    def test_all_lookups_succeed_small_epsilon(self, small_pairs):
        pgm = PGMIndex(epsilon=4)
        pgm.bulk_load(small_pairs)
        for key, value in small_pairs:
            assert pgm.get(key) == value

    def test_all_lookups_succeed_large_epsilon(self, small_pairs):
        pgm = PGMIndex(epsilon=512)
        pgm.bulk_load(small_pairs)
        for key, value in small_pairs[::3]:
            assert pgm.get(key) == value

    def test_delta_and_retrain(self, small_pairs):
        pgm = PGMIndex(epsilon=16, max_delta=None)
        pgm.bulk_load(small_pairs)
        pgm.insert(123.456, "x")
        assert pgm.delta_size == 1
        pgm.retrain()
        assert pgm.delta_size == 0
        assert pgm.get(123.456) == "x"

    def test_search_window_bounded_by_epsilon(self, small_pairs):
        pgm = PGMIndex(epsilon=8)
        pgm.bulk_load(small_pairs)
        pgm.get(small_pairs[100][0])
        # window = 2*epsilon + 2 at most (when prediction holds).
        assert pgm.stats.last_search_window <= 2 * 8 + 2
