"""``bulk_lookup`` must count exactly what per-key ``get`` counts.

The batched SUT path swaps a loop of scalar ``get`` calls for one
``bulk_lookup``; its contract is *stat equality*, not just value
equality — the per-key comparison / node-access / model-evaluation
tuples feed the cost model, so any drift changes measured service
times. Each test builds twin instances of an index, runs one through
scalar gets (diffing stats around each call) and the other through
``bulk_lookup``, and demands identical per-key tuples and totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes.alex import AdaptiveLearnedIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.pgm import PGMIndex
from repro.indexes.rmi import RecursiveModelIndex
from repro.indexes.sorted_array import SortedArrayIndex

FACTORIES = {
    "sorted_array": lambda: SortedArrayIndex(),
    "btree": lambda: BPlusTree(),
    "rmi": lambda: RecursiveModelIndex(fanout=16),
    "pgm": lambda: PGMIndex(epsilon=8),
    "alex": lambda: AdaptiveLearnedIndex(),
}


def _loaded(factory, keys):
    index = factory()
    index.bulk_load([(float(k), i) for i, k in enumerate(keys)])
    return index


def _scalar_counts(index, probe):
    """Per-key (comparisons, node_accesses, model_evals) via scalar gets."""
    rows = []
    for key in probe:
        before = index.stats.snapshot()
        index.get(float(key))
        diff = index.stats.diff(before)
        rows.append(
            (diff.comparisons, diff.node_accesses, diff.model_evaluations)
        )
    return rows


@pytest.fixture
def keys():
    rng = np.random.default_rng(17)
    return np.unique(rng.uniform(0.0, 1e6, 3000))


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_bulk_matches_scalar_stats(name, keys):
    factory = FACTORIES[name]
    rng = np.random.default_rng(5)
    probe = rng.choice(keys, size=500)

    scalar_index = _loaded(factory, keys)
    scalar_rows = _scalar_counts(scalar_index, probe)

    bulk_index = _loaded(factory, keys)
    baseline = bulk_index.stats.snapshot()
    out = bulk_index.bulk_lookup(np.asarray(probe, dtype=np.float64))
    assert out is not None, f"{name}: bulk_lookup unsupported on a clean load"
    comps, node_accesses, model_evals = out
    bulk_rows = list(
        zip(comps.tolist(), node_accesses.tolist(), model_evals.tolist())
    )
    assert bulk_rows == scalar_rows

    # Committed totals equal the summed per-key counts.
    total = bulk_index.stats.diff(baseline)
    assert total.lookups == probe.size
    assert total.comparisons == scalar_index.stats.comparisons
    assert total.node_accesses == scalar_index.stats.node_accesses
    assert total.model_evaluations == scalar_index.stats.model_evaluations


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_bulk_miss_returns_none_without_stats(name, keys):
    index = _loaded(FACTORIES[name], keys)
    before = index.stats.snapshot()
    probe = np.asarray([float(keys[0]), -1234.5])  # second key absent
    assert index.bulk_lookup(probe) is None
    diff = index.stats.diff(before)
    assert diff.lookups == 0
    assert diff.comparisons == 0
    assert diff.node_accesses == 0
    assert diff.model_evaluations == 0


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_bulk_after_mutation_stays_exact(name, keys):
    """Inserts/deletes invalidate caches; bulk must still match scalar."""
    factory = FACTORIES[name]

    def mutate(index):
        for k in (7.5, 11.25, 13.0):
            index.insert(k, "new")
        index.delete(float(keys[10]))

    probe_keys = np.asarray([7.5, 11.25, 13.0, float(keys[0]), float(keys[50])])

    scalar_index = _loaded(factory, keys)
    mutate(scalar_index)
    scalar_rows = _scalar_counts(scalar_index, probe_keys)

    bulk_index = _loaded(factory, keys)
    mutate(bulk_index)
    out = bulk_index.bulk_lookup(probe_keys)
    if out is None:
        # Tombstones / delta buffers may legitimately disable the fast
        # path; the SUT then falls back to scalar gets, which is what
        # the driver equivalence tests cover.
        return
    comps, node_accesses, model_evals = out
    assert (
        list(zip(comps.tolist(), node_accesses.tolist(), model_evals.tolist()))
        == scalar_rows
    )


def test_empty_index_unsupported():
    for name, factory in FACTORIES.items():
        index = factory()
        assert index.bulk_lookup(np.asarray([1.0])) is None, name
