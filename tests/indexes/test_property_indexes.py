"""Property-based tests: every ordered index behaves like a sorted dict."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.indexes import (
    AdaptiveLearnedIndex,
    BPlusTree,
    PGMIndex,
    RecursiveModelIndex,
    SortedArrayIndex,
)

# Finite, not-too-extreme floats keep model arithmetic meaningful.
KEYS = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

INDEX_FACTORIES = [
    lambda: BPlusTree(order=4),
    lambda: SortedArrayIndex(),
    lambda: RecursiveModelIndex(fanout=4, max_delta=8),
    lambda: PGMIndex(epsilon=4, max_delta=8),
    lambda: AdaptiveLearnedIndex(node_capacity=16),
]
IDS = ["btree", "sorted-array", "rmi", "pgm", "alex"]


@pytest.mark.parametrize("factory", INDEX_FACTORIES, ids=IDS)
@given(keys=st.lists(KEYS, min_size=0, max_size=60))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_matches_reference_dict_on_inserts(factory, keys):
    """Insert sequence: index agrees with a dict + sorted() reference."""
    index = factory()
    reference = {}
    for i, key in enumerate(keys):
        index.insert(key, i)
        reference[key] = i
    assert len(index) == len(reference)
    assert [k for k, _ in index.items()] == sorted(reference)
    for key, value in reference.items():
        assert index.get(key) == value


@pytest.mark.parametrize("factory", INDEX_FACTORIES, ids=IDS)
@given(
    keys=st.lists(KEYS, min_size=1, max_size=50, unique=True),
    delete_ratio=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_deletes_match_reference(factory, keys, delete_ratio):
    """Bulk-load then delete a prefix: survivors intact, victims gone."""
    index = factory()
    index.bulk_load([(k, i) for i, k in enumerate(keys)])
    n_delete = int(len(keys) * delete_ratio)
    victims, survivors = keys[:n_delete], keys[n_delete:]
    for key in victims:
        index.delete(key)
    assert len(index) == len(survivors)
    for key in victims:
        with pytest.raises(KeyNotFoundError):
            index.get(key)
    for key in survivors:
        assert index.get(key) == keys.index(key)


@pytest.mark.parametrize("factory", INDEX_FACTORIES, ids=IDS)
@given(
    keys=st.lists(KEYS, min_size=2, max_size=50, unique=True),
    bounds=st.tuples(KEYS, KEYS),
)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_range_matches_filter(factory, keys, bounds):
    """range(lo, hi) equals the brute-force filtered sorted list."""
    lo, hi = min(bounds), max(bounds)
    index = factory()
    index.bulk_load([(k, None) for k in keys])
    got = [k for k, _ in index.range(lo, hi)]
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert got == expected


@given(
    keys=st.lists(KEYS, min_size=5, max_size=80, unique=True),
    fanout=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=40, deadline=None)
def test_rmi_error_bounds_always_honest(keys, fanout):
    """For any data and fanout, the RMI finds every trained key."""
    rmi = RecursiveModelIndex(fanout=fanout, max_delta=None)
    rmi.bulk_load([(k, i) for i, k in enumerate(keys)])
    ordered = sorted(set(keys))
    for rank, key in enumerate(ordered):
        assert rmi.get(key) == keys.index(key)


@given(
    keys=st.lists(KEYS, min_size=5, max_size=80, unique=True),
    epsilon=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_pgm_epsilon_always_honest(keys, epsilon):
    """For any data and ε, the PGM finds every trained key."""
    pgm = PGMIndex(epsilon=epsilon, max_delta=None)
    pgm.bulk_load([(k, i) for i, k in enumerate(keys)])
    for key in keys:
        assert pgm.get(key) == keys.index(key)
