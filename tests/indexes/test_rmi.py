"""RMI specifics: training, error bounds, delta buffer, access routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, KeyNotFoundError
from repro.indexes.rmi import RecursiveModelIndex


class TestConstruction:
    def test_rejects_zero_fanout(self):
        with pytest.raises(ConfigurationError):
            RecursiveModelIndex(fanout=0)

    def test_untrained_empty_lookup_is_clean_miss(self):
        rmi = RecursiveModelIndex()
        with pytest.raises(KeyNotFoundError):
            rmi.get(1.0)

    def test_set_fanout_validates(self):
        rmi = RecursiveModelIndex()
        with pytest.raises(ConfigurationError):
            rmi.set_fanout(0)


class TestTraining:
    def test_bulk_load_trains(self, small_pairs):
        rmi = RecursiveModelIndex(fanout=16)
        rmi.bulk_load(small_pairs)
        assert rmi.is_trained
        assert rmi.stats.retrains == 1

    def test_higher_fanout_smaller_error(self, small_pairs):
        coarse = RecursiveModelIndex(fanout=2)
        fine = RecursiveModelIndex(fanout=128)
        coarse.bulk_load(small_pairs)
        fine.bulk_load(small_pairs)
        assert fine.mean_error_bound() < coarse.mean_error_bound()

    def test_error_bounds_are_honest(self, small_pairs):
        """A lookup within the claimed window must find every key."""
        rmi = RecursiveModelIndex(fanout=8)
        rmi.bulk_load(small_pairs)
        for key, value in small_pairs:
            assert rmi.get(key) == value

    def test_empty_train(self):
        rmi = RecursiveModelIndex(fanout=4)
        rmi.bulk_load([])
        assert rmi.is_trained
        assert rmi.max_error_bound() == 0


class TestDeltaBuffer:
    def test_inserts_buffer_until_retrain(self, small_pairs):
        rmi = RecursiveModelIndex(fanout=8, max_delta=None)
        rmi.bulk_load(small_pairs)
        rmi.insert(1e9, "x")
        assert rmi.delta_size == 1
        assert rmi.get(1e9) == "x"
        rmi.retrain()
        assert rmi.delta_size == 0
        assert rmi.get(1e9) == "x"

    def test_auto_retrain_at_max_delta(self, small_pairs):
        rmi = RecursiveModelIndex(fanout=8, max_delta=10)
        rmi.bulk_load(small_pairs)
        for i in range(12):
            rmi.insert(2e9 + i, i)
        assert rmi.stats.retrains >= 2
        assert rmi.delta_size <= 10

    def test_delta_overwrites_base(self, small_pairs):
        rmi = RecursiveModelIndex(max_delta=None)
        rmi.bulk_load(small_pairs)
        key = small_pairs[10][0]
        rmi.insert(key, "updated")
        assert rmi.get(key) == "updated"
        rmi.retrain()
        assert rmi.get(key) == "updated"
        assert len(rmi) == len(small_pairs)

    def test_tombstone_then_retrain(self, small_pairs):
        rmi = RecursiveModelIndex(max_delta=None)
        rmi.bulk_load(small_pairs)
        key = small_pairs[20][0]
        rmi.delete(key)
        with pytest.raises(KeyNotFoundError):
            rmi.get(key)
        rmi.retrain()
        with pytest.raises(KeyNotFoundError):
            rmi.get(key)
        assert len(rmi) == len(small_pairs) - 1


class TestAccessRouting:
    def _hot_cold(self, rng, pairs):
        keys = np.asarray([k for k, _ in pairs])
        lo, hi = keys.min(), keys.max()
        hot = rng.uniform(lo, lo + (hi - lo) * 0.05, 2000)
        return hot

    def test_access_sample_sets_boundary_routing(self, rng, small_pairs):
        rmi = RecursiveModelIndex(fanout=32, max_delta=None)
        rmi.bulk_load(small_pairs)
        assert not rmi.uses_access_routing
        rmi.retrain(access_sample=self._hot_cold(rng, small_pairs))
        assert rmi.uses_access_routing

    def test_routing_preserves_correctness(self, rng, small_pairs):
        rmi = RecursiveModelIndex(fanout=32, max_delta=None)
        rmi.bulk_load(small_pairs)
        rmi.retrain(access_sample=self._hot_cold(rng, small_pairs))
        for key, value in small_pairs[::11]:
            assert rmi.get(key) == value

    def test_boundaries_survive_delta_merge(self, rng, small_pairs):
        rmi = RecursiveModelIndex(fanout=32, max_delta=None)
        rmi.bulk_load(small_pairs)
        rmi.retrain(access_sample=self._hot_cold(rng, small_pairs))
        rmi.insert(123456.0, "x")
        rmi.retrain()  # merge without a fresh sample
        assert rmi.uses_access_routing
        assert rmi.get(123456.0) == "x"

    def test_bulk_load_resets_routing(self, rng, small_pairs):
        rmi = RecursiveModelIndex(fanout=32, max_delta=None)
        rmi.bulk_load(small_pairs)
        rmi.retrain(access_sample=self._hot_cold(rng, small_pairs))
        rmi.bulk_load(small_pairs)
        assert not rmi.uses_access_routing

    def test_hot_region_cheaper_than_cold(self, rng):
        """Specialization: hot-region lookups use smaller windows."""
        keys = np.unique(
            np.concatenate([rng.normal(c, 30, 600) for c in range(0, 100_000, 5000)])
        )
        pairs = [(float(k), i) for i, k in enumerate(keys)]
        rmi = RecursiveModelIndex(fanout=64, max_delta=None)
        rmi.bulk_load(pairs)
        lo, hi = keys.min(), keys.max()
        hot_lo, hot_hi = lo, lo + (hi - lo) * 0.05
        sample = rng.uniform(hot_lo, hot_hi, 2000)
        rmi.retrain(access_sample=sample)

        def mean_window(region):
            windows = []
            for k in region:
                snapped = keys[min(len(keys) - 1, np.searchsorted(keys, k))]
                rmi.get(float(snapped))
                windows.append(rmi.stats.last_search_window)
            return np.mean(windows)

        hot_keys = rng.uniform(hot_lo, hot_hi, 100)
        cold_keys = rng.uniform(lo + (hi - lo) * 0.5, lo + (hi - lo) * 0.6, 100)
        assert mean_window(hot_keys) < mean_window(cold_keys)
