"""Contract tests every OrderedIndex implementation must satisfy."""

from __future__ import annotations

import pytest

from repro.errors import KeyNotFoundError
from repro.indexes import (
    AdaptiveLearnedIndex,
    BPlusTree,
    HashIndex,
    PGMIndex,
    RecursiveModelIndex,
    SortedArrayIndex,
)

ALL_INDEXES = [
    BPlusTree,
    SortedArrayIndex,
    HashIndex,
    RecursiveModelIndex,
    PGMIndex,
    AdaptiveLearnedIndex,
]


@pytest.fixture(params=ALL_INDEXES, ids=lambda c: c.__name__)
def index(request):
    return request.param()


class TestEmptyIndex:
    def test_len_zero(self, index):
        assert len(index) == 0

    def test_get_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.get(1.0)

    def test_delete_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.delete(1.0)

    def test_contains_false(self, index):
        assert not index.contains(42.0)

    def test_items_empty(self, index):
        assert list(index.items()) == []


class TestBulkLoadAndGet:
    def test_all_keys_retrievable(self, index, small_pairs):
        index.bulk_load(small_pairs)
        for key, value in small_pairs[::7]:
            assert index.get(key) == value

    def test_len_matches(self, index, small_pairs):
        index.bulk_load(small_pairs)
        assert len(index) == len(small_pairs)

    def test_missing_key_raises(self, index, small_pairs):
        index.bulk_load(small_pairs)
        with pytest.raises(KeyNotFoundError):
            index.get(-1234.5)

    def test_bulk_load_unsorted_input(self, index, small_pairs):
        shuffled = list(reversed(small_pairs))
        index.bulk_load(shuffled)
        assert index.get(small_pairs[3][0]) == small_pairs[3][1]

    def test_bulk_load_duplicate_keys_last_wins(self, index):
        index.bulk_load([(1.0, "a"), (2.0, "b"), (1.0, "c")])
        assert index.get(1.0) == "c"
        assert len(index) == 2


class TestInsert:
    def test_insert_then_get(self, index):
        index.insert(5.0, "five")
        assert index.get(5.0) == "five"
        assert len(index) == 1

    def test_insert_overwrites(self, index):
        index.insert(5.0, "old")
        index.insert(5.0, "new")
        assert index.get(5.0) == "new"
        assert len(index) == 1

    def test_interleaved_inserts(self, index, small_pairs):
        index.bulk_load(small_pairs[:500])
        for key, value in small_pairs[500:600]:
            index.insert(key, value)
        assert len(index) == 600
        for key, value in small_pairs[540:560]:
            assert index.get(key) == value
        # Old keys still reachable.
        assert index.get(small_pairs[100][0]) == small_pairs[100][1]

    def test_many_sequential_inserts(self, index):
        for i in range(500):
            index.insert(float(i), i)
        assert len(index) == 500
        assert index.get(250.0) == 250


class TestDelete:
    def test_delete_then_get_raises(self, index, small_pairs):
        index.bulk_load(small_pairs)
        key = small_pairs[50][0]
        index.delete(key)
        with pytest.raises(KeyNotFoundError):
            index.get(key)
        assert len(index) == len(small_pairs) - 1

    def test_delete_missing_raises(self, index, small_pairs):
        index.bulk_load(small_pairs)
        with pytest.raises(KeyNotFoundError):
            index.delete(-999.0)

    def test_reinsert_after_delete(self, index):
        index.insert(7.0, "a")
        index.delete(7.0)
        index.insert(7.0, "b")
        assert index.get(7.0) == "b"


class TestRange:
    def test_range_returns_sorted_inclusive(self, index, small_pairs):
        index.bulk_load(small_pairs)
        keys = [k for k, _ in small_pairs]
        lo, hi = keys[100], keys[150]
        result = index.range(lo, hi)
        assert [k for k, _ in result] == keys[100:151]

    def test_range_empty_interval(self, index, small_pairs):
        index.bulk_load(small_pairs)
        keys = [k for k, _ in small_pairs]
        gap = (keys[10] + keys[11]) / 2.0
        assert index.range(gap, gap) == []

    def test_range_covers_inserts(self, index):
        index.bulk_load([(float(i), i) for i in range(0, 100, 2)])
        index.insert(51.0, "new")
        result = index.range(50.0, 52.0)
        assert [k for k, _ in result] == [50.0, 51.0, 52.0]

    def test_full_range_equals_items(self, index, small_pairs):
        index.bulk_load(small_pairs)
        keys = [k for k, _ in small_pairs]
        full = index.range(keys[0], keys[-1])
        assert [k for k, _ in full] == keys


class TestItems:
    def test_items_ascending(self, index, small_pairs):
        index.bulk_load(small_pairs)
        keys = [k for k, _ in index.items()]
        assert keys == sorted(keys)
        assert len(keys) == len(small_pairs)

    def test_keys_helper(self, index):
        index.bulk_load([(3.0, 1), (1.0, 2), (2.0, 3)])
        assert index.keys() == [1.0, 2.0, 3.0]


class TestStats:
    def test_lookup_counts(self, index, small_pairs):
        index.bulk_load(small_pairs)
        before = index.stats.lookups
        for key, _ in small_pairs[:10]:
            index.get(key)
        assert index.stats.lookups == before + 10

    def test_work_counted(self, index, small_pairs):
        index.bulk_load(small_pairs)
        before = index.stats.snapshot()
        index.get(small_pairs[10][0])
        delta = index.stats.snapshot().diff(before)
        assert delta.node_accesses + delta.comparisons + delta.model_evaluations > 0

    def test_snapshot_diff_roundtrip(self, index):
        index.insert(1.0, 1)
        snap = index.stats.snapshot()
        index.insert(2.0, 2)
        delta = index.stats.snapshot().diff(snap)
        assert delta.inserts == 1
