"""B+ tree specifics: splits, height, bulk-load structure, ordering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.indexes.btree import BPlusTree


class TestConstruction:
    def test_rejects_tiny_order(self):
        with pytest.raises(ConfigurationError):
            BPlusTree(order=2)

    def test_order_property(self):
        assert BPlusTree(order=8).order == 8

    def test_initial_height(self):
        assert BPlusTree().height == 1


class TestSplits:
    def test_height_grows_with_inserts(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(float(i), i)
        assert tree.height >= 3
        assert len(tree) == 100

    def test_random_insert_order_consistent(self, rng):
        tree = BPlusTree(order=4)
        keys = rng.permutation(500).astype(float)
        for k in keys:
            tree.insert(float(k), int(k))
        assert len(tree) == 500
        assert tree.keys() == sorted(float(k) for k in keys)

    def test_descending_inserts(self):
        tree = BPlusTree(order=4)
        for i in reversed(range(200)):
            tree.insert(float(i), i)
        assert tree.keys() == [float(i) for i in range(200)]


class TestBulkLoad:
    def test_bulk_load_height_reasonable(self, small_pairs):
        tree = BPlusTree(order=64)
        tree.bulk_load(small_pairs)
        # ~1200 keys at 32/leaf -> <=40 leaves -> height 2-3.
        assert tree.height <= 3

    def test_bulk_load_then_insert(self, small_pairs):
        tree = BPlusTree(order=16)
        tree.bulk_load(small_pairs)
        tree.insert(-1.0, "front")
        tree.insert(1e12, "back")
        assert tree.get(-1.0) == "front"
        assert tree.get(1e12) == "back"
        assert tree.keys()[0] == -1.0
        assert tree.keys()[-1] == 1e12

    def test_bulk_load_empty(self):
        tree = BPlusTree()
        tree.bulk_load([])
        assert len(tree) == 0

    def test_bulk_load_single(self):
        tree = BPlusTree()
        tree.bulk_load([(1.0, "x")])
        assert tree.get(1.0) == "x"


class TestLeafChain:
    def test_range_spans_leaves(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(float(i), i)
        result = tree.range(10.0, 90.0)
        assert [k for k, _ in result] == [float(i) for i in range(10, 91)]

    def test_items_spans_leaves_after_mixed_ops(self, rng):
        tree = BPlusTree(order=4)
        keys = set()
        for k in rng.permutation(300).astype(float):
            tree.insert(float(k), 1)
            keys.add(float(k))
        for k in list(keys)[:50]:
            tree.delete(k)
            keys.remove(k)
        assert [k for k, _ in tree.items()] == sorted(keys)


class TestNodeAccounting:
    def test_deeper_tree_costs_more(self, small_pairs):
        shallow = BPlusTree(order=256)
        deep = BPlusTree(order=4)
        shallow.bulk_load(small_pairs)
        deep.bulk_load(small_pairs)
        key = small_pairs[500][0]
        for tree in (shallow, deep):
            tree.stats = tree.stats.snapshot()  # reset-ish; fresh counters
        s0 = shallow.stats.snapshot()
        shallow.get(key)
        d_shallow = shallow.stats.snapshot().diff(s0)
        s1 = deep.stats.snapshot()
        deep.get(key)
        d_deep = deep.stats.snapshot().diff(s1)
        assert d_deep.node_accesses > d_shallow.node_accesses
