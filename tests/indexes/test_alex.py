"""ALEX specifics: gapped arrays, node splits, model-based placement."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.indexes.alex import AdaptiveLearnedIndex


class TestConstruction:
    def test_rejects_small_capacity(self):
        with pytest.raises(ConfigurationError):
            AdaptiveLearnedIndex(node_capacity=4)

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigurationError):
            AdaptiveLearnedIndex(density=0.99)

    def test_starts_with_one_node(self):
        assert AdaptiveLearnedIndex().node_count == 1


class TestSplitting:
    def test_splits_under_insert_pressure(self):
        alex = AdaptiveLearnedIndex(node_capacity=32)
        for i in range(500):
            alex.insert(float(i), i)
        assert alex.node_count > 1
        assert len(alex) == 500
        for i in range(0, 500, 37):
            assert alex.get(float(i)) == i

    def test_random_order_inserts(self, rng):
        alex = AdaptiveLearnedIndex(node_capacity=32)
        keys = rng.permutation(800).astype(float)
        for k in keys:
            alex.insert(float(k), int(k))
        assert len(alex) == 800
        assert [k for k, _ in alex.items()] == sorted(float(k) for k in keys)

    def test_bulk_load_builds_multiple_nodes(self, small_pairs):
        alex = AdaptiveLearnedIndex(node_capacity=64)
        alex.bulk_load(small_pairs)
        assert alex.node_count > 1
        for key, value in small_pairs[::13]:
            assert alex.get(key) == value


class TestGappedPlacement:
    def test_inserts_into_gaps_keep_order(self, rng):
        alex = AdaptiveLearnedIndex(node_capacity=128, density=0.5)
        base = [(float(i) * 10.0, i) for i in range(100)]
        alex.bulk_load(base)
        # Insert between existing keys.
        for i in range(99):
            alex.insert(float(i) * 10.0 + 5.0, -i)
        keys = [k for k, _ in alex.items()]
        assert keys == sorted(keys)
        assert len(alex) == 199

    def test_skewed_inserts(self, rng):
        alex = AdaptiveLearnedIndex(node_capacity=64)
        for k in rng.lognormal(5, 2, 1000):
            alex.insert(float(k), 1)
        keys = [k for k, _ in alex.items()]
        assert keys == sorted(keys)

    def test_retrain_counted_on_rebuild(self):
        alex = AdaptiveLearnedIndex(node_capacity=32)
        for i in range(200):
            alex.insert(float(i), i)
        assert alex.stats.retrains > 0
