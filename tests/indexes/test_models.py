"""Model-fitting utilities: linear fits, CDF model, error bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotTrainedError
from repro.indexes.models import CDFModel, LinearModel, fit_linear, max_abs_error


class TestLinearModel:
    def test_exact_fit_on_line(self):
        keys = np.arange(100, dtype=np.float64)
        model = fit_linear(keys, 3.0 * keys + 7.0)
        assert model.slope == pytest.approx(3.0)
        assert model.intercept == pytest.approx(7.0)

    def test_predict_array_matches_scalar(self):
        model = LinearModel(2.0, 1.0)
        keys = np.asarray([0.0, 1.5, -2.0])
        assert np.allclose(model.predict_array(keys), [model.predict(k) for k in keys])

    def test_empty_input(self):
        model = fit_linear(np.empty(0), np.empty(0))
        assert model.predict(123.0) == 0.0

    def test_single_point(self):
        model = fit_linear(np.asarray([5.0]), np.asarray([42.0]))
        assert model.predict(5.0) == 42.0
        assert model.slope == 0.0

    def test_constant_keys(self):
        keys = np.full(10, 7.0)
        positions = np.arange(10, dtype=np.float64)
        model = fit_linear(keys, positions)
        assert model.slope == 0.0
        assert model.predict(7.0) == pytest.approx(positions.mean())


class TestMaxAbsError:
    def test_zero_on_perfect_fit(self):
        keys = np.arange(50, dtype=np.float64)
        model = fit_linear(keys, keys)
        assert max_abs_error(model, keys, keys) == (0, 0)

    def test_bounds_cover_residuals(self, rng):
        keys = np.sort(rng.uniform(0, 100, 200))
        positions = np.arange(200, dtype=np.float64)
        model = fit_linear(keys, positions)
        under, over = max_abs_error(model, keys, positions)
        preds = model.predict_array(keys)
        assert (positions - preds <= under + 1e-9).all()
        assert (preds - positions <= over + 1e-9).all()

    def test_empty(self):
        assert max_abs_error(LinearModel(1, 0), np.empty(0), np.empty(0)) == (0, 0)


class TestCDFModel:
    def test_requires_data(self):
        with pytest.raises(NotTrainedError):
            CDFModel([])

    def test_monotone(self, rng):
        model = CDFModel(rng.normal(0, 1, 1000))
        grid = np.linspace(-4, 4, 100)
        values = model.predict_array(grid)
        assert (np.diff(values) >= 0).all()
        assert values[0] >= 0.0 and values[-1] <= 1.0

    def test_median_near_half(self, rng):
        model = CDFModel(rng.normal(10, 2, 5000))
        assert model.predict(10.0) == pytest.approx(0.5, abs=0.05)

    def test_quantile_inverts_predict(self, rng):
        sample = rng.uniform(0, 100, 2000)
        model = CDFModel(sample)
        for q in (0.1, 0.5, 0.9):
            key = model.quantile(q)
            assert model.predict(key) == pytest.approx(q, abs=0.05)

    def test_quantile_clamps(self, rng):
        model = CDFModel(rng.uniform(0, 1, 100))
        assert model.quantile(-0.5) == model.quantile(0.0)
        assert model.quantile(1.5) == model.quantile(1.0)

    def test_len(self):
        assert len(CDFModel([1.0, 2.0, 3.0])) == 3


class TestSizeAccounting:
    """size_bytes / index_overhead_bytes across structures."""

    def _loaded(self, cls, pairs, **kwargs):
        index = cls(**kwargs)
        index.bulk_load(pairs)
        return index

    def test_all_structures_report_positive_size(self, small_pairs):
        from repro.indexes import (
            AdaptiveLearnedIndex,
            BPlusTree,
            HashIndex,
            PGMIndex,
            RecursiveModelIndex,
            SortedArrayIndex,
        )

        for cls in (BPlusTree, SortedArrayIndex, HashIndex,
                    RecursiveModelIndex, PGMIndex, AdaptiveLearnedIndex):
            index = self._loaded(cls, small_pairs)
            assert index.size_bytes() > 0
            assert index.index_overhead_bytes() >= 0

    def test_learned_overhead_much_smaller_than_btree(self, small_pairs):
        from repro.indexes import BPlusTree, PGMIndex, RecursiveModelIndex

        btree = self._loaded(BPlusTree, small_pairs)
        rmi = self._loaded(RecursiveModelIndex, small_pairs, fanout=16,
                           max_delta=None)
        pgm = self._loaded(PGMIndex, small_pairs, epsilon=64, max_delta=None)
        assert rmi.index_overhead_bytes() < btree.index_overhead_bytes() / 3
        assert pgm.index_overhead_bytes() < btree.index_overhead_bytes() / 5

    def test_rmi_size_grows_with_fanout(self, small_pairs):
        from repro.indexes import RecursiveModelIndex

        small = self._loaded(RecursiveModelIndex, small_pairs, fanout=4,
                             max_delta=None)
        large = self._loaded(RecursiveModelIndex, small_pairs, fanout=256,
                             max_delta=None)
        assert large.size_bytes() > small.size_bytes()

    def test_pgm_size_shrinks_with_epsilon(self, small_pairs):
        from repro.indexes import PGMIndex

        tight = self._loaded(PGMIndex, small_pairs, epsilon=2, max_delta=None)
        loose = self._loaded(PGMIndex, small_pairs, epsilon=256, max_delta=None)
        assert loose.size_bytes() <= tight.size_bytes()
