"""The batched driver path is pinned, bit for bit, to the scalar one.

``DriverConfig(use_batching=True)`` must reproduce the retained
scalar/heap reference exactly: same result columns, same vocabularies,
same training events, same SUT-side counters. Both paths consume the
same vectorized :class:`QueryBatch` per segment, so every remaining
difference — the FIFO kernel, tick/batch slicing, bulk index lookups,
deferred observation hooks, block appends — is under test here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import pytest

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.queueing import fifo_single_server
from repro.core.scenario import Scenario, Segment
from repro.core.sut import SystemUnderTest
from repro.observability import NullTracer, Tracer
from repro.suts.kv_learned import LearnedKVStore
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution, ZipfDistribution
from repro.workloads.drift import AbruptDrift
from repro.workloads.generators import (
    KVOperation,
    OperationMix,
    WorkloadSpec,
    simple_spec,
)
from repro.workloads.patterns import ConstantArrivals

COLUMNS = ("arrivals", "starts", "completions", "op_codes", "segment_codes")


def _mixed_scenario(seed: int = 11, extra_segments: Optional[List[Segment]] = None):
    """Two segments: steady reads, then a drifting mixed-op workload."""
    mix = OperationMix(
        {
            KVOperation.READ: 0.7,
            KVOperation.INSERT: 0.15,
            KVOperation.SCAN: 0.1,
            KVOperation.UPDATE: 0.05,
        }
    )
    spec_reads = simple_spec("s0", UniformDistribution(0, 1000), rate=300.0)
    spec_mixed = WorkloadSpec(
        name="s1",
        mix=mix,
        key_drift=AbruptDrift(
            [UniformDistribution(0, 1000), ZipfDistribution(0, 1000, theta=1.2)],
            [1.0],
        ),
        arrivals=ConstantArrivals(300.0),
        scan_length_mean=16,
    )
    segments = [
        Segment(spec=spec_reads, duration=2.0),
        Segment(spec=spec_mixed, duration=2.0),
    ]
    if extra_segments:
        segments.extend(extra_segments)
    return Scenario(
        name="mixed",
        segments=segments,
        seed=seed,
        initial_keys=np.linspace(0, 1000, 2000),
    )


def _run_both(sut_factory, scenario_factory, tracer_factory=None, **config_kwargs):
    out = {}
    for batching in (True, False):
        config = DriverConfig(use_batching=batching, **config_kwargs)
        tracer = tracer_factory() if tracer_factory is not None else None
        out[batching] = VirtualClockDriver(config, tracer=tracer).run(
            sut_factory(), scenario_factory()
        )
    return out[True], out[False]


def _assert_identical(batched, scalar):
    for name in COLUMNS:
        assert np.array_equal(
            getattr(batched.columns, name), getattr(scalar.columns, name)
        ), f"column {name!r} diverged"
    assert batched.columns.op_vocab == scalar.columns.op_vocab
    assert batched.columns.segment_vocab == scalar.columns.segment_vocab
    assert [
        (e.start, e.end, e.nominal_seconds, e.online)
        for e in batched.training_events
    ] == [
        (e.start, e.end, e.nominal_seconds, e.online)
        for e in scalar.training_events
    ]
    # The SUT's genuine work (index counters, drift checks, retrains)
    # must match too — batching may not change what the system measured.
    assert batched.sut_description == scalar.sut_description


class TestBatchedEqualsScalar:
    @pytest.mark.parametrize("servers", [1, 4])
    def test_traditional_store(self, servers):
        batched, scalar = _run_both(
            TraditionalKVStore, _mixed_scenario, servers=servers
        )
        _assert_identical(batched, scalar)
        assert batched.columns.arrivals.size > 1000

    @pytest.mark.parametrize("servers", [1, 4])
    def test_learned_store_with_retrains(self, servers):
        """Adaptive SUT: drift detection and online retrains fire in both
        paths at the same ticks with the same nominal costs."""
        batched, scalar = _run_both(
            LearnedKVStore, _mixed_scenario, servers=servers
        )
        _assert_identical(batched, scalar)

    def test_zero_arrival_segment(self):
        """A rate-0 segment contributes no queries but still ticks."""
        quiet = Segment(
            spec=simple_spec("quiet", UniformDistribution(0, 1000), rate=0.0),
            duration=3.0,
        )
        batched, scalar = _run_both(
            TraditionalKVStore,
            lambda: _mixed_scenario(extra_segments=[quiet]),
        )
        _assert_identical(batched, scalar)
        assert "quiet" in batched.columns.segment_vocab

    def test_tiny_duration_segment(self):
        """A near-zero-duration segment (usually empty) stays aligned."""
        blip = Segment(
            spec=simple_spec("blip", UniformDistribution(0, 1000), rate=500.0),
            duration=1e-6,
        )
        batched, scalar = _run_both(
            TraditionalKVStore,
            lambda: _mixed_scenario(extra_segments=[blip]),
        )
        _assert_identical(batched, scalar)

    def test_truncate_max_queries_mid_batch(self):
        """Truncation cuts the same arrivals on both paths."""
        batched, scalar = _run_both(
            TraditionalKVStore,
            _mixed_scenario,
            max_queries=700,
            truncate_max_queries=True,
        )
        _assert_identical(batched, scalar)
        assert batched.columns.arrivals.size == 700

    def test_truncation_off_still_raises(self):
        from repro.errors import DriverError

        with pytest.raises(DriverError):
            VirtualClockDriver(DriverConfig(max_queries=700)).run(
                TraditionalKVStore(), _mixed_scenario()
            )


class TestTracingInvariance:
    """Tracing is observational: it may never change a run's results."""

    @pytest.mark.parametrize("sut_factory", [TraditionalKVStore, LearnedKVStore])
    def test_batched_equals_scalar_with_tracing_enabled(self, sut_factory):
        """The bit-identity invariant holds with a live tracer attached."""
        batched, scalar = _run_both(
            sut_factory, _mixed_scenario, tracer_factory=Tracer
        )
        _assert_identical(batched, scalar)

    @pytest.mark.parametrize("tracer_factory", [None, NullTracer, Tracer])
    def test_result_payload_identical_across_tracers(self, tracer_factory):
        """No tracer, NullTracer, and full Tracer: byte-identical results."""
        import json

        config = DriverConfig()
        tracer = tracer_factory() if tracer_factory is not None else None
        result = VirtualClockDriver(config, tracer=tracer).run(
            LearnedKVStore(), _mixed_scenario()
        )
        payload = json.dumps(result.to_dict(), sort_keys=True)
        baseline = VirtualClockDriver(DriverConfig()).run(
            LearnedKVStore(), _mixed_scenario()
        )
        assert payload == json.dumps(baseline.to_dict(), sort_keys=True)

    def test_trace_counts_agree_with_result(self):
        """The trace's driver counters match the run record exactly."""
        tracer = Tracer()
        result = VirtualClockDriver(DriverConfig(), tracer=tracer).run(
            LearnedKVStore(), _mixed_scenario()
        )
        trace = tracer.finish()
        assert trace.counter("driver.queries") == result.num_queries
        assert trace.counter("driver.segments") == len(result.segments)
        online = sum(1 for e in result.training_events if e.online)
        assert trace.counter("driver.online_retrains") == online
        # Per-batch spans cover every query served through the fast path.
        assert trace.counter("driver.batched_queries") == result.num_queries
        batch_spans = [s for s in trace.walk() if s.name == "batch"]
        assert len(batch_spans) == trace.counter("driver.batches")
        assert sum(s.attrs["queries"] for s in batch_spans) == result.num_queries

    def test_no_open_spans_after_run(self):
        tracer = Tracer()
        VirtualClockDriver(DriverConfig(), tracer=tracer).run(
            TraditionalKVStore(), _mixed_scenario()
        )
        assert tracer.open_spans == 0


class TestExecuteOnlyFallback:
    """Third-party SUTs that only implement ``execute`` keep working."""

    class MinimalSUT(SystemUnderTest):
        def __init__(self):
            super().__init__("minimal")
            self.calls: List[float] = []

        def setup(self, pairs):
            pass

        def execute(self, query, now):
            self.calls.append(now)
            return 1e-4 + (query.key % 7) * 1e-6

    def test_default_execute_batch_loops(self):
        batched, scalar = _run_both(self.MinimalSUT, _mixed_scenario)
        _assert_identical(batched, scalar)

    def test_now_is_arrival_time(self):
        sut = self.MinimalSUT()
        result = VirtualClockDriver().run(sut, _mixed_scenario())
        assert np.array_equal(
            np.asarray(sut.calls), result.columns.arrivals
        )


class TestFifoKernel:
    @staticmethod
    def _scalar_fifo(arrivals, services, free):
        starts, completions = [], []
        for a, s in zip(arrivals, services):
            start = max(float(a), free)
            completion = start + float(s)
            free = completion
            starts.append(start)
            completions.append(completion)
        return np.asarray(starts), np.asarray(completions), free

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_loop_exactly(self, seed):
        """Random overload/idle mixtures: exact float equality."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5000))
        arrivals = np.sort(rng.uniform(0.0, 10.0, n))
        # Alternate regimes so both kernel branches get exercised.
        services = rng.uniform(0.0, 2.5 / max(n, 1), n)
        services[rng.uniform(size=n) < 0.3] *= 50.0
        free = float(rng.uniform(0.0, 0.5))
        ref = self._scalar_fifo(arrivals, services, free)
        got = fifo_single_server(arrivals, services, free)
        assert np.array_equal(ref[0], got[0])
        assert np.array_equal(ref[1], got[1])
        assert ref[2] == got[2]

    def test_empty_batch(self):
        starts, completions, free = fifo_single_server(
            np.empty(0), np.empty(0), 3.5
        )
        assert starts.size == 0 and completions.size == 0
        assert free == 3.5

    def test_tie_arrival_equals_completion(self):
        """An arrival exactly at the previous completion starts there."""
        arrivals = np.asarray([0.0, 1.0, 2.0])
        services = np.asarray([1.0, 1.0, 1.0])
        starts, completions, free = fifo_single_server(arrivals, services)
        assert starts.tolist() == [0.0, 1.0, 2.0]
        assert completions.tolist() == [1.0, 2.0, 3.0]
        assert free == 3.0
