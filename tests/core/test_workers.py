"""The shared process-worker layer (`repro.core.workers`).

Pins the pool semantics both `MatrixRunner` and
`ShardedStreamingExecutor` (and the multi-tenant server) rely on: the
failure taxonomy, the retry budget, deadline kills, hook contracts, and
the inline fast path.
"""

import os
import time

import pytest

from repro.core.workers import (
    WorkerOutcome,
    WorkerPool,
    WorkerTask,
    format_task_error,
    kill_process,
    mp_context,
)
from repro.errors import ConfigurationError


def _double(x):
    return x * 2


def _boom(message):
    raise ValueError(message)


def _hard_crash(code):
    os._exit(code)


def _sleepy(seconds):
    time.sleep(seconds)
    return "done"


def _flaky(flag_path):
    """Fails the first attempt, succeeds afterwards (file as state)."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as fh:
            fh.write("1")
        raise RuntimeError("first attempt fails")
    return "recovered"


def _traced_body(x, tracer):
    tracer.counter("jobs")
    with tracer.span("work", phase="serve"):
        return x + 1


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(workers=0)

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(max_attempts=0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(timeout=0)

    def test_backoff_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(retry_backoff=-0.1)


class TestFormatTaskError:
    def test_head_and_traceback_tail(self):
        try:
            _boom("nope")
        except ValueError as exc:
            text = format_task_error(exc)
        assert text.startswith("ValueError: nope")
        assert "_boom" in text


class TestInlineMode:
    def test_empty_task_list(self):
        assert WorkerPool().run([]) == []

    def test_payloads_aligned_with_input(self):
        pool = WorkerPool(workers=1)
        outcomes = pool.run(
            [WorkerTask(fn=_double, args=(i,)) for i in range(4)]
        )
        assert [o.payload for o in outcomes] == [0, 2, 4, 6]
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_inline_runs_in_parent_process(self):
        outcome = WorkerPool(workers=1).run([WorkerTask(fn=os.getpid)])[0]
        assert outcome.payload == os.getpid()
        assert outcome.worker == os.getpid()

    def test_error_taxonomy(self):
        pool = WorkerPool(workers=1, max_attempts=1)
        outcome = pool.run([WorkerTask(fn=_boom, args=("bad",))])[0]
        assert not outcome.ok
        assert outcome.payload is None
        assert outcome.error.startswith("ValueError: bad")

    def test_retry_recovers(self, tmp_path):
        flag = str(tmp_path / "flag")
        pool = WorkerPool(workers=1, max_attempts=2, retry_backoff=0.0)
        outcome = pool.run([WorkerTask(fn=_flaky, args=(flag,))])[0]
        assert outcome.ok
        assert outcome.payload == "recovered"
        assert outcome.attempts == 2

    def test_hooks_fire_in_order(self):
        seen = []
        pool = WorkerPool(workers=1, max_attempts=1)
        pool.run(
            [WorkerTask(fn=_double, args=(1,))],
            on_attempt=lambda i, a: seen.append(("attempt", i, a)),
            on_outcome=lambda o: seen.append(("outcome", o.index, o.ok)),
        )
        assert seen == [("attempt", 0, 1), ("outcome", 0, True)]

    def test_traced_task_carries_trace(self):
        outcome = WorkerPool().run(
            [WorkerTask(fn=_traced_body, args=(41,), traced=True)]
        )[0]
        assert outcome.payload == 42
        assert outcome.trace is not None
        assert outcome.trace["counters"]["jobs"] == 1

    def test_non_picklable_fn_works_inline(self):
        outcome = WorkerPool(workers=1).run(
            [WorkerTask(fn=lambda: "lambda-ok")]
        )[0]
        assert outcome.payload == "lambda-ok"


class TestProcessMode:
    def test_payload_round_trip(self):
        pool = WorkerPool(workers=2)
        outcomes = pool.run(
            [WorkerTask(fn=_double, args=(i,)) for i in range(5)]
        )
        assert [o.payload for o in outcomes] == [0, 2, 4, 6, 8]

    def test_runs_in_child_process(self):
        outcome = WorkerPool(workers=2).run([WorkerTask(fn=os.getpid)])[0]
        assert outcome.payload != os.getpid()
        assert outcome.worker == outcome.payload

    def test_crash_taxonomy_and_budget(self):
        pool = WorkerPool(workers=2, max_attempts=2, retry_backoff=0.0)
        outcome = pool.run([WorkerTask(fn=_hard_crash, args=(17,))])[0]
        assert not outcome.ok
        assert outcome.error == "worker crashed (exit code 17)"
        assert outcome.attempts == 2

    def test_timeout_taxonomy(self):
        pool = WorkerPool(
            workers=2, max_attempts=1, timeout=0.5, retry_backoff=0.0
        )
        outcome = pool.run([WorkerTask(fn=_sleepy, args=(30.0,))])[0]
        assert not outcome.ok
        assert outcome.error == (
            "TimeoutError: job exceeded the 0.5s wall-clock budget (killed)"
        )
        assert outcome.wall_seconds == 0.5

    def test_timeout_forces_isolation_with_one_worker(self):
        # Enforcing a deadline needs a killable process, so workers=1
        # with a timeout must still fork.
        outcome = WorkerPool(workers=1, timeout=30.0).run(
            [WorkerTask(fn=os.getpid)]
        )[0]
        assert outcome.payload != os.getpid()

    def test_structured_error_from_child(self):
        pool = WorkerPool(workers=2, max_attempts=1)
        outcome = pool.run([WorkerTask(fn=_boom, args=("far away",))])[0]
        assert outcome.error.startswith("ValueError: far away")

    def test_retry_recovers_across_processes(self, tmp_path):
        flag = str(tmp_path / "flag")
        pool = WorkerPool(workers=2, max_attempts=3, retry_backoff=0.0)
        outcome = pool.run([WorkerTask(fn=_flaky, args=(flag,))])[0]
        assert outcome.ok
        assert outcome.attempts == 2

    def test_bad_task_does_not_poison_good_ones(self):
        pool = WorkerPool(workers=2, max_attempts=1, retry_backoff=0.0)
        outcomes = pool.run(
            [
                WorkerTask(fn=_double, args=(3,)),
                WorkerTask(fn=_boom, args=("mid",)),
                WorkerTask(fn=_double, args=(4,)),
            ]
        )
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].payload == 6 and outcomes[2].payload == 8

    def test_on_outcome_raise_aborts_pool(self):
        pool = WorkerPool(workers=2, max_attempts=1, retry_backoff=0.0)

        def fail_fast(outcome: WorkerOutcome) -> None:
            if not outcome.ok:
                raise RuntimeError(f"task {outcome.index} died")

        with pytest.raises(RuntimeError, match="died"):
            pool.run(
                [WorkerTask(fn=_boom, args=("x",)) for _ in range(3)],
                on_outcome=fail_fast,
            )

    def test_traced_task_in_child(self):
        outcome = WorkerPool(workers=2).run(
            [WorkerTask(fn=_traced_body, args=(1,), traced=True)]
        )[0]
        assert outcome.payload == 2
        assert outcome.trace["counters"]["jobs"] == 1


class TestSharedHelpers:
    def test_mp_context_prefers_fork(self):
        context = mp_context()
        assert context.get_start_method() in ("fork", "spawn", "forkserver")

    def test_kill_process_terminates(self):
        context = mp_context()
        proc = context.Process(target=time.sleep, args=(60,))
        proc.start()
        kill_process(proc)
        assert not proc.is_alive()
