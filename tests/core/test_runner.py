"""The matrix runner: determinism, caching, invalidation, failures."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.driver import DriverConfig
from repro.core.runner import (
    CACHE_FORMAT,
    MatrixJob,
    MatrixRunner,
    ResultCache,
    RunManifest,
    job_cache_key,
    matrix_jobs,
    run_matrix,
)
from repro.core.scenario import Scenario, Segment
from repro.core.sut import SystemUnderTest
from repro.errors import RunnerError
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec


class CountingSUT(SystemUnderTest):
    """Deterministic SUT whose service time depends on the query key."""

    def __init__(self, name: str = "counting", scale: float = 1.0) -> None:
        super().__init__(name)
        self.scale = scale

    def setup(self, pairs):
        self.n = len(pairs)

    def execute(self, query, now):
        return 1e-4 * self.scale * (1.0 + (query.key or 0.0) % 3)

    def describe(self):
        return {"name": self.name, "class": "CountingSUT", "scale": self.scale}


class ExplodingSUT(SystemUnderTest):
    """Raises at query time — exercises in-worker failure reporting."""

    def __init__(self) -> None:
        super().__init__("exploding")

    def setup(self, pairs):
        pass

    def execute(self, query, now):
        raise RuntimeError("boom at query time")


def _raising_factory():
    raise ValueError("factory cannot build")


def _scenario(rate=60.0, duration=3.0, seed=5, name="matrix-test"):
    return Scenario(
        name=name,
        segments=[
            Segment(
                spec=simple_spec("s0", UniformDistribution(0, 100), rate=rate),
                duration=duration,
            )
        ],
        seed=seed,
    )


class TestJobBuilding:
    def test_cartesian_product(self):
        jobs = matrix_jobs(
            {"a": CountingSUT, "b": CountingSUT},
            [_scenario(name="x"), _scenario(name="y")],
            seeds=[1, 2, 3],
        )
        assert len(jobs) == 2 * 2 * 3
        assert jobs[0].label == "a×x#s1"

    def test_seed_override_applied(self):
        job = MatrixJob(sut_factory=CountingSUT, scenario=_scenario(seed=5), seed=9)
        assert job.resolved_scenario().seed == 9
        assert job.scenario.seed == 5  # original untouched

    def test_no_seeds_keeps_scenario_seed(self):
        jobs = matrix_jobs({"a": CountingSUT}, [_scenario(seed=5)])
        assert len(jobs) == 1
        assert jobs[0].resolved_scenario().seed == 5


class TestDeterminism:
    def test_parallel_identical_to_serial(self):
        jobs = matrix_jobs(
            {"counting": CountingSUT}, [_scenario()], seeds=[1, 2, 3, 4]
        )
        serial = MatrixRunner(workers=1).run(jobs)
        parallel = MatrixRunner(workers=4).run(jobs)
        assert all(r is not None for r in serial.results)
        for a, b in zip(serial.results, parallel.results):
            assert a.to_json() == b.to_json()

    def test_results_aligned_with_jobs(self):
        jobs = matrix_jobs({"counting": CountingSUT}, [_scenario()], seeds=[7, 8])
        outcome = MatrixRunner(workers=2).run(jobs)
        for job, record in zip(jobs, outcome.manifest.jobs):
            assert record.seed == job.seed
        assert [r.scenario_name for r in outcome.manifest.jobs] == [
            "matrix-test",
            "matrix-test",
        ]


class TestCaching:
    def test_hit_on_unchanged_inputs(self, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = matrix_jobs({"counting": CountingSUT}, [_scenario()], seeds=[1, 2])
        cold = run_matrix(jobs, cache_dir=cache)
        warm = run_matrix(jobs, cache_dir=cache)
        assert cold.manifest.executed == 2 and cold.manifest.hits == 0
        assert warm.manifest.hits == 2 and warm.manifest.executed == 0
        for a, b in zip(cold.results, warm.results):
            assert a.to_json() == b.to_json()

    def test_invalidated_by_driver_config(self, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = matrix_jobs({"counting": CountingSUT}, [_scenario()])
        run_matrix(jobs, cache_dir=cache)
        changed = run_matrix(
            jobs, driver_config=DriverConfig(servers=2), cache_dir=cache
        )
        assert changed.manifest.hits == 0 and changed.manifest.executed == 1

    def test_invalidated_by_scenario_change(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_matrix(
            matrix_jobs({"c": CountingSUT}, [_scenario(rate=60.0)]),
            cache_dir=cache,
        )
        changed = run_matrix(
            matrix_jobs({"c": CountingSUT}, [_scenario(rate=61.0)]),
            cache_dir=cache,
        )
        assert changed.manifest.hits == 0 and changed.manifest.executed == 1

    def test_invalidated_by_seed(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_matrix(
            matrix_jobs({"c": CountingSUT}, [_scenario()], seeds=[1]),
            cache_dir=cache,
        )
        changed = run_matrix(
            matrix_jobs({"c": CountingSUT}, [_scenario()], seeds=[2]),
            cache_dir=cache,
        )
        assert changed.manifest.hits == 0

    def test_invalidated_by_sut_description(self):
        config = DriverConfig()
        job = MatrixJob(sut_factory=CountingSUT, scenario=_scenario())
        a = job_cache_key(job, config, CountingSUT(scale=1.0).describe())
        b = job_cache_key(job, config, CountingSUT(scale=2.0).describe())
        assert a != b

    def test_no_cache_flag_forces_execution(self, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()])
        run_matrix(jobs, cache_dir=cache)
        forced = run_matrix(jobs, cache_dir=cache, use_cache=False)
        assert forced.manifest.executed == 1 and forced.manifest.hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()])
        cold = run_matrix(jobs, cache_dir=cache)
        key = cold.manifest.jobs[0].cache_key
        with open(os.path.join(cache, f"{key}.json"), "w") as handle:
            handle.write("{ torn write")
        again = run_matrix(jobs, cache_dir=cache)
        assert again.manifest.executed == 1
        assert again.results[0].to_json() == cold.results[0].to_json()

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        """An entry written under another schema version is not served."""
        cache = str(tmp_path / "cache")
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()])
        cold = run_matrix(jobs, cache_dir=cache)
        key = cold.manifest.jobs[0].cache_key
        path = os.path.join(cache, f"{key}.json")
        with open(path) as handle:
            payload = json.load(handle)
        payload["format"] = CACHE_FORMAT + 1
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert ResultCache(cache).load(key) is None
        again = run_matrix(jobs, cache_dir=cache)
        assert again.manifest.executed == 1 and again.manifest.hits == 0

    def test_missing_format_field_is_a_miss(self, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()])
        cold = run_matrix(jobs, cache_dir=cache)
        key = cold.manifest.jobs[0].cache_key
        path = os.path.join(cache, f"{key}.json")
        with open(path) as handle:
            payload = json.load(handle)
        del payload["format"]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert ResultCache(cache).load(key) is None


class TestFailureReporting:
    def test_in_worker_failure_marked_and_matrix_completes(self):
        jobs = [
            MatrixJob(sut_factory=CountingSUT, scenario=_scenario(), label="good"),
            MatrixJob(sut_factory=ExplodingSUT, scenario=_scenario(), label="bad"),
            MatrixJob(sut_factory=CountingSUT, scenario=_scenario(), label="good2"),
        ]
        outcome = MatrixRunner(workers=2).run(jobs)
        statuses = {j.label: j.status for j in outcome.manifest.jobs}
        assert statuses == {"good": "ok", "bad": "failed", "good2": "ok"}
        bad = outcome.manifest.jobs[1]
        assert "boom at query time" in bad.error
        assert outcome.results[0] is not None and outcome.results[1] is None
        with pytest.raises(RunnerError, match="bad"):
            outcome.raise_on_failure()

    def test_error_includes_traceback_tail(self):
        """A worker failure reports *where* it raised, not just what."""
        jobs = [MatrixJob(sut_factory=ExplodingSUT, scenario=_scenario())]
        outcome = MatrixRunner().run(jobs)
        error = outcome.manifest.jobs[0].error
        assert error.startswith("RuntimeError: boom at query time")
        assert "test_runner.py" in error  # frame where execute() raised
        assert "raise RuntimeError" in error

    def test_factory_failure_marked(self):
        jobs = [
            MatrixJob(sut_factory=_raising_factory, scenario=_scenario(), label="f"),
            MatrixJob(sut_factory=CountingSUT, scenario=_scenario(), label="ok"),
        ]
        outcome = MatrixRunner().run(jobs)
        assert outcome.manifest.jobs[0].status == "failed"
        assert "factory cannot build" in outcome.manifest.jobs[0].error
        assert outcome.manifest.jobs[1].status == "ok"

    def test_failed_jobs_never_cached(self, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = [MatrixJob(sut_factory=ExplodingSUT, scenario=_scenario())]
        run_matrix(jobs, cache_dir=cache)
        again = run_matrix(jobs, cache_dir=cache)
        assert again.manifest.hits == 0
        assert again.manifest.jobs[0].status == "failed"

    def test_empty_matrix(self):
        outcome = MatrixRunner().run([])
        assert outcome.results == [] and outcome.manifest.jobs == []


class TestManifest:
    def test_roundtrip(self, tmp_path):
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()], seeds=[1, 2])
        outcome = run_matrix(jobs, cache_dir=str(tmp_path / "cache"))
        path = str(tmp_path / "manifest.json")
        outcome.manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == outcome.manifest.to_dict()
        # The file is plain JSON (observability contract).
        with open(path) as handle:
            data = json.load(handle)
        assert {j["status"] for j in data["jobs"]} == {"ok"}

    def test_records_wall_time_and_worker(self):
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()], seeds=[1, 2])
        outcome = MatrixRunner(workers=2).run(jobs)
        for record in outcome.manifest.jobs:
            assert record.wall_seconds > 0
            assert record.worker > 0

    def test_named_view(self):
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()], seeds=[1, 2])
        named = MatrixRunner().run(jobs).named()
        assert set(named) == {"c×matrix-test#s1", "c×matrix-test#s2"}


class TestTelemetry:
    """Per-job traces on the manifest and the matrix-wide rollup."""

    def test_executed_jobs_carry_traces(self):
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()], seeds=[1, 2])
        outcome = MatrixRunner(workers=2).run(jobs)
        for record in outcome.manifest.jobs:
            assert record.trace is not None
            assert record.trace["spans"], "trace should hold the span forest"
        telemetry = outcome.manifest.telemetry()
        assert telemetry["traced_jobs"] == 2
        # Two jobs of the same scenario: counters double a single run's.
        queries = outcome.results[0].num_queries + outcome.results[1].num_queries
        assert telemetry["counters"]["driver.queries"] == queries
        assert telemetry["phase_seconds"]["serve"] > 0.0

    def test_cached_jobs_have_no_trace(self, tmp_path):
        cache = str(tmp_path / "cache")
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()])
        run_matrix(jobs, cache_dir=cache)
        warm = run_matrix(jobs, cache_dir=cache)
        record = warm.manifest.jobs[0]
        assert record.status == "cached" and record.trace is None
        assert warm.manifest.telemetry()["traced_jobs"] == 0

    def test_failed_jobs_have_no_trace(self):
        jobs = [MatrixJob(sut_factory=ExplodingSUT, scenario=_scenario())]
        outcome = MatrixRunner().run(jobs)
        assert outcome.manifest.jobs[0].trace is None

    def test_telemetry_survives_manifest_roundtrip(self, tmp_path):
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()], seeds=[3])
        outcome = MatrixRunner().run(jobs)
        path = str(tmp_path / "manifest.json")
        outcome.manifest.save(path)
        loaded = RunManifest.load(path)
        assert loaded.telemetry() == outcome.manifest.telemetry()
        with open(path) as handle:
            data = json.load(handle)
        assert data["telemetry"] == outcome.manifest.telemetry()

    def test_serial_and_parallel_telemetry_counters_match(self):
        """Counter totals are execution-strategy independent."""
        jobs = matrix_jobs({"c": CountingSUT}, [_scenario()], seeds=[1, 2, 3])
        serial = MatrixRunner(workers=1).run(jobs)
        parallel = MatrixRunner(workers=3).run(jobs)
        assert (
            serial.manifest.telemetry()["counters"]
            == parallel.manifest.telemetry()["counters"]
        )


class TestValidation:
    def test_bad_worker_count(self):
        with pytest.raises(RunnerError):
            MatrixRunner(workers=0)

    def test_bad_max_attempts(self):
        with pytest.raises(RunnerError):
            MatrixRunner(max_attempts=0)
