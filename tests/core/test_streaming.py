"""Streaming pipeline mechanics: recorder, spiller, summary, driver knob."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.core.streaming import (
    ColumnSpiller,
    StreamBlock,
    StreamingRecorder,
    StreamingRunSummary,
    load_spilled_columns,
)
from repro.errors import ConfigurationError, DriverError
from repro.serialization import (
    streaming_summary_from_dict,
    streaming_summary_to_dict,
)
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec


class _CollectingAccumulator:
    """Test double: records every folded block verbatim."""

    name = "collector"

    def __init__(self):
        self.blocks = []

    def fold(self, block):
        self.blocks.append(block)

    def finalize(self, horizon):
        return {"n": sum(len(b) for b in self.blocks), "horizon": horizon}


def _block(n, offset=0.0, op=0, segment=0):
    arrivals = np.arange(n, dtype=np.float64) + offset
    return StreamBlock(
        arrivals=arrivals,
        starts=arrivals + 0.1,
        completions=arrivals + 0.5,
        op_codes=np.full(n, op, dtype=np.int32),
        segment_codes=np.full(n, segment, dtype=np.int32),
    )


class TestStreamBlock:
    def test_derives_sorted_completions_and_latencies(self):
        arrivals = np.array([0.0, 1.0, 2.0])
        completions = np.array([5.0, 1.5, 2.5])
        block = StreamBlock(
            arrivals=arrivals,
            starts=arrivals,
            completions=completions,
            op_codes=np.zeros(3, np.int32),
            segment_codes=np.zeros(3, np.int32),
        )
        assert np.array_equal(block.completions_sorted, [1.5, 2.5, 5.0])
        assert np.array_equal(block.latencies, [5.0, 0.5, 0.5])
        assert len(block) == 3


class TestStreamingRecorder:
    def test_scalar_appends_flush_on_scratch_full(self):
        acc = _CollectingAccumulator()
        recorder = StreamingRecorder(accumulators=[acc], scratch_capacity=4)
        code = recorder.intern_op("read")
        seg = recorder.intern_segment("a")
        for i in range(10):
            recorder.append(float(i), float(i), float(i) + 0.5, code, seg)
        # Two full scratches auto-flushed; two rows still buffered.
        assert sum(len(b) for b in acc.blocks) == 8
        recorder.flush()
        assert sum(len(b) for b in acc.blocks) == 10
        assert recorder.count == len(recorder) == 10
        assert recorder.max_completion == pytest.approx(9.5)
        assert recorder.op_counts() == {"read": 10}
        assert recorder.segment_counts() == {"a": 10}

    def test_append_block_flushes_scratch_first(self):
        acc = _CollectingAccumulator()
        recorder = StreamingRecorder(accumulators=[acc], scratch_capacity=16)
        code = recorder.intern_op("read")
        seg = recorder.intern_segment("a")
        recorder.append(0.0, 0.0, 0.5, code, seg)
        arrivals = np.array([1.0, 2.0])
        recorder.append_block(
            arrivals, arrivals, arrivals + 0.5, np.full(2, code, np.int32), seg
        )
        # Scratch row must have been folded BEFORE the block to keep
        # the stream in driver append order.
        assert [len(b) for b in acc.blocks] == [1, 2]
        assert recorder.count == 3

    def test_vocab_interning_is_stable(self):
        recorder = StreamingRecorder()
        assert recorder.intern_op("read") == 0
        assert recorder.intern_op("write") == 1
        assert recorder.intern_op("read") == 0
        assert recorder.op_vocab == ("read", "write")
        assert recorder.intern_segment("a") == 0
        assert recorder.segment_vocab == ("a",)

    def test_empty_block_append_is_a_no_op(self):
        acc = _CollectingAccumulator()
        recorder = StreamingRecorder(accumulators=[acc])
        empty = np.zeros(0, dtype=np.float64)
        recorder.append_block(empty, empty, empty, np.zeros(0, np.int32), 0)
        assert acc.blocks == []
        assert recorder.count == 0

    def test_count_reads_do_not_flush_scratch(self):
        # Regression: op_counts()/segment_counts() used to flush the
        # scratch, moving block boundaries when read mid-run.
        acc = _CollectingAccumulator()
        recorder = StreamingRecorder(accumulators=[acc])
        read = recorder.intern_op("read")
        write = recorder.intern_op("write")
        seg = recorder.intern_segment("a")
        recorder.append(0.0, 0.0, 0.1, read, seg)
        recorder.append(0.2, 0.2, 0.3, write, seg)
        assert recorder.op_counts() == {"read": 1, "write": 1}
        assert recorder.segment_counts() == {"a": 2}
        assert acc.blocks == []  # scratch untouched — no fold happened
        recorder.append(0.4, 0.4, 0.5, read, seg)
        recorder.flush()
        assert [len(b) for b in acc.blocks] == [3]
        assert recorder.op_counts() == {"read": 2, "write": 1}

    def test_count_reads_merge_flushed_and_pending(self):
        recorder = StreamingRecorder(accumulators=[], scratch_capacity=2)
        read = recorder.intern_op("read")
        seg = recorder.intern_segment("a")
        for i in range(3):  # capacity 2 → one auto-flush + one pending
            recorder.append(float(i), float(i), float(i) + 0.1, read, seg)
        assert recorder.op_counts() == {"read": 3}
        assert recorder.segment_counts() == {"a": 3}

    def test_first_arrival_tracks_scratch_and_flushed(self):
        recorder = StreamingRecorder()
        assert recorder.first_arrival is None
        code = recorder.intern_op("read")
        seg = recorder.intern_segment("a")
        recorder.append(1.5, 1.5, 1.6, code, seg)
        assert recorder.first_arrival == 1.5  # still in scratch
        recorder.flush()
        assert recorder.first_arrival == 1.5  # survives the fold


class TestColumnSpiller:
    def test_shards_split_and_round_trip(self, tmp_path):
        spiller = ColumnSpiller(tmp_path / "spill", shard_rows=64)
        recorder = StreamingRecorder(spiller=spiller)
        code = recorder.intern_op("read")
        seg = recorder.intern_segment("a")
        # 3 blocks of 50 rows: shard boundaries fall inside blocks.
        for k in range(3):
            arrivals = np.arange(50, dtype=np.float64) + 50 * k
            recorder.append_block(
                arrivals, arrivals, arrivals + 0.5, np.full(50, code, np.int32), seg
            )
        recorder.flush()
        manifest = spiller.finish(recorder.op_vocab, recorder.segment_vocab)
        assert manifest["rows"] == 150
        assert len(manifest["shards"]) == 3  # 64 + 64 + 22 tail
        cols = load_spilled_columns(tmp_path / "spill")
        assert cols.size == 150
        assert np.array_equal(cols.arrivals, np.arange(150, dtype=np.float64))
        assert np.array_equal(cols.completions, cols.arrivals + 0.5)
        assert cols.op_vocab == ("read",)
        assert cols.segment_vocab == ("a",)

    def test_manifest_written_to_disk(self, tmp_path):
        spiller = ColumnSpiller(tmp_path / "s", shard_rows=16)
        spiller.write(_block(4))
        spiller.finish(["read"], ["a"])
        with open(tmp_path / "s" / "manifest.json") as fh:
            manifest = json.load(fh)
        assert manifest["format"] == "npz"
        assert manifest["rows"] == 4
        assert manifest["op_vocab"] == ["read"]

    def test_finish_is_idempotent(self, tmp_path):
        # Regression: a second finish() used to append a duplicate tail
        # shard and rewrite the manifest with doubled row counts.
        spiller = ColumnSpiller(tmp_path / "s", shard_rows=16)
        spiller.write(_block(4))
        first = spiller.finish(["read"], ["a"])
        again = spiller.finish(["read"], ["a"])
        assert again is first
        assert first["rows"] == 4
        cols = load_spilled_columns(tmp_path / "s")
        assert cols.size == 4

    def test_finish_rejects_conflicting_vocabularies(self, tmp_path):
        spiller = ColumnSpiller(tmp_path / "s", shard_rows=16)
        spiller.write(_block(4))
        spiller.finish(["read"], ["a"])
        with pytest.raises(ConfigurationError, match="different vocab"):
            spiller.finish(["read", "write"], ["a"])

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ColumnSpiller(tmp_path, fmt="csv")

    def test_parquet_gated_on_pyarrow(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
        except ImportError:
            with pytest.raises(ConfigurationError):
                ColumnSpiller(tmp_path, fmt="parquet")
        else:
            spiller = ColumnSpiller(tmp_path / "pq", fmt="parquet", shard_rows=8)
            spiller.write(_block(10))
            spiller.finish(["read"], ["a"])
            cols = load_spilled_columns(tmp_path / "pq")
            assert cols.size == 10


class TestDriverStreaming:
    def _scenario(self):
        spec = simple_spec("steady", UniformDistribution(0, 1000), rate=150.0)
        return Scenario(
            name="stream-smoke",
            segments=[
                Segment(spec=spec, duration=2.0, label="a"),
                Segment(spec=spec, duration=2.0, label="b"),
            ],
            seed=3,
            initial_keys=np.linspace(0.0, 1000.0, 500),
        )

    def test_block_size_validation(self):
        with pytest.raises(DriverError):
            DriverConfig(block_size=0)

    def test_block_size_describe_key_is_conditional(self):
        # Absent by default so existing runner cache keys stay stable.
        assert "block_size" not in DriverConfig().describe()
        assert DriverConfig(block_size=64).describe()["block_size"] == 64

    def test_run_columns_invariant_under_block_size(self):
        reference = VirtualClockDriver(DriverConfig()).run(
            TraditionalKVStore(), self._scenario()
        )
        for block_size in (1, 7, 64):
            result = VirtualClockDriver(DriverConfig(block_size=block_size)).run(
                TraditionalKVStore(), self._scenario()
            )
            for name in (
                "arrivals", "starts", "completions", "op_codes", "segment_codes",
            ):
                assert np.array_equal(
                    getattr(result.columns, name),
                    getattr(reference.columns, name),
                ), f"column {name!r} changed under block_size={block_size}"

    def test_run_streaming_summary_and_spill(self, tmp_path):
        driver = VirtualClockDriver(DriverConfig(block_size=64))
        summary = driver.run_streaming(
            TraditionalKVStore(),
            self._scenario(),
            sla=0.05,
            spill_dir=str(tmp_path / "spill"),
        )
        reference = VirtualClockDriver(DriverConfig()).run(
            TraditionalKVStore(), self._scenario()
        )
        assert summary.num_queries == reference.columns.size
        assert summary.mean_throughput() == reference.mean_throughput()
        assert {"throughput", "adaptability", "latency", "segments", "sla"} <= set(
            summary.metrics
        )
        spilled = load_spilled_columns(summary.spill["directory"])
        assert np.array_equal(spilled.arrivals, reference.columns.arrivals)
        assert np.array_equal(spilled.completions, reference.columns.completions)

    def test_summary_round_trip(self, tmp_path):
        driver = VirtualClockDriver(DriverConfig(block_size=32))
        summary = driver.run_streaming(TraditionalKVStore(), self._scenario())
        payload = streaming_summary_to_dict(summary)
        restored = streaming_summary_from_dict(json.loads(json.dumps(payload)))
        assert isinstance(restored, StreamingRunSummary)
        assert restored.num_queries == summary.num_queries
        assert restored.metrics == summary.metrics
        assert restored.segments == summary.segments
        assert restored.op_counts == summary.op_counts
