"""Runner hardening: timeouts, retry budgets, checkpoint/resume."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.runner import MatrixJob, MatrixRunner, RunManifest, matrix_jobs
from repro.core.scenario import Scenario, Segment
from repro.core.sut import SystemUnderTest
from repro.errors import RunnerError
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec


class FastSUT(SystemUnderTest):
    """Completes instantly; the well-behaved member of the matrix."""

    def __init__(self) -> None:
        super().__init__("fast")

    def setup(self, pairs):
        pass

    def execute(self, query, now):
        return 1e-4

    def describe(self):
        return {"name": self.name, "class": "FastSUT"}


class SleepingSUT(SystemUnderTest):
    """Hangs at setup — exercises the wall-clock timeout kill path."""

    def __init__(self) -> None:
        super().__init__("sleeping")

    def setup(self, pairs):
        time.sleep(60.0)

    def execute(self, query, now):
        return 1e-4


class ExplodingSUT(SystemUnderTest):
    """Raises at query time — exercises retry-budget exhaustion."""

    def __init__(self) -> None:
        super().__init__("exploding")

    def setup(self, pairs):
        pass

    def execute(self, query, now):
        raise RuntimeError("boom at query time")


def _scenario(rate=60.0, duration=3.0, seed=5, name="harden-test"):
    return Scenario(
        name=name,
        segments=[
            Segment(
                spec=simple_spec("s0", UniformDistribution(0, 100), rate=rate),
                duration=duration,
            )
        ],
        seed=seed,
    )


class TestValidation:
    def test_bad_timeout_rejected(self):
        with pytest.raises(RunnerError):
            MatrixRunner(job_timeout=0.0)

    def test_negative_backoff_rejected(self):
        with pytest.raises(RunnerError):
            MatrixRunner(retry_backoff=-1.0)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(RunnerError):
            MatrixRunner(resume=True)


class TestTimeout:
    def test_hung_job_is_killed_and_marked_failed(self):
        jobs = [
            MatrixJob(sut_factory=SleepingSUT, scenario=_scenario(),
                      label="hung"),
            MatrixJob(sut_factory=FastSUT, scenario=_scenario(seed=6),
                      label="good"),
        ]
        runner = MatrixRunner(
            workers=2, job_timeout=1.0, max_attempts=1, retry_backoff=0.0
        )
        t0 = time.monotonic()
        outcome = runner.run(jobs)
        elapsed = time.monotonic() - t0
        assert elapsed < 30.0  # killed, not waited out
        hung, good = outcome.manifest.jobs
        assert hung.status == "failed"
        assert "wall-clock budget" in hung.error
        assert good.status == "ok"
        assert outcome.results[0] is None
        assert outcome.results[1] is not None

    def test_single_job_with_timeout_runs_isolated(self):
        # A one-job matrix normally runs in-process; with a timeout it
        # must still go through the process scheduler so it can be
        # killed.
        jobs = [MatrixJob(sut_factory=SleepingSUT, scenario=_scenario(),
                          label="hung")]
        runner = MatrixRunner(
            job_timeout=1.0, max_attempts=1, retry_backoff=0.0
        )
        outcome = runner.run(jobs)
        assert outcome.manifest.jobs[0].status == "failed"

    def test_timeout_consumes_attempts(self):
        jobs = [MatrixJob(sut_factory=SleepingSUT, scenario=_scenario(),
                          label="hung")]
        runner = MatrixRunner(
            job_timeout=0.5, max_attempts=2, retry_backoff=0.0
        )
        outcome = runner.run(jobs)
        record = outcome.manifest.jobs[0]
        assert record.status == "failed"
        assert record.attempts == 2


class TestRetryBudget:
    def test_exhaustion_surfaces_traceback_tail(self):
        jobs = [MatrixJob(sut_factory=ExplodingSUT, scenario=_scenario(),
                          label="bad")]
        runner = MatrixRunner(workers=2, max_attempts=3, retry_backoff=0.0,
                              job_timeout=30.0)
        outcome = runner.run(jobs)
        record = outcome.manifest.jobs[0]
        assert record.status == "failed"
        assert record.attempts == 3
        assert record.error.startswith("RuntimeError: boom at query time")
        assert "raise RuntimeError" in record.error

    def test_serial_path_matches_pool_semantics(self):
        jobs = [MatrixJob(sut_factory=ExplodingSUT, scenario=_scenario(),
                          label="bad")]
        serial = MatrixRunner(workers=1, max_attempts=2, retry_backoff=0.0)
        outcome = serial.run(jobs)
        record = outcome.manifest.jobs[0]
        assert record.status == "failed"
        assert record.attempts == 2
        assert record.error.startswith("RuntimeError: boom at query time")

    def test_clean_job_records_one_attempt(self):
        jobs = matrix_jobs({"fast": FastSUT}, [_scenario()], seeds=[1, 2])
        outcome = MatrixRunner(workers=2).run(jobs)
        assert [r.attempts for r in outcome.manifest.jobs] == [1, 1]

    def test_backoff_delays_retries(self):
        jobs = [MatrixJob(sut_factory=ExplodingSUT, scenario=_scenario(),
                          label="bad")]
        runner = MatrixRunner(workers=2, max_attempts=3, retry_backoff=0.2,
                              job_timeout=30.0)
        t0 = time.monotonic()
        runner.run(jobs)
        # Two retries gated at 0.2 * 2**0 and 0.2 * 2**1 seconds.
        assert time.monotonic() - t0 >= 0.6


class TestCheckpointResume:
    def _jobs(self):
        return matrix_jobs(
            {"fast": FastSUT}, [_scenario()], seeds=[1, 2, 3]
        )

    def test_checkpoint_written_and_loadable(self, tmp_path):
        ckpt = str(tmp_path / "manifest.json")
        runner = MatrixRunner(
            cache_dir=str(tmp_path / "cache"), checkpoint=ckpt
        )
        outcome = runner.run(self._jobs())
        saved = RunManifest.load(ckpt)
        assert saved.canonical_dict() == outcome.manifest.canonical_dict()
        assert all(r.status == "ok" for r in saved.jobs)

    def test_resume_reproduces_uninterrupted_manifest(self, tmp_path):
        cache = str(tmp_path / "cache")
        ckpt = str(tmp_path / "manifest.json")

        # The uninterrupted reference run (separate cache: no sharing).
        reference = MatrixRunner(
            cache_dir=str(tmp_path / "ref-cache")
        ).run(self._jobs())

        # A full run that leaves a checkpoint behind...
        MatrixRunner(cache_dir=cache, checkpoint=ckpt).run(self._jobs())

        # ...then simulate the interruption: truncate the checkpoint to
        # its first two job records and delete the third job's cache
        # entry, as if the process died mid-matrix.
        with open(ckpt) as handle:
            payload = json.load(handle)
        dropped = payload["jobs"].pop()
        os.unlink(os.path.join(cache, f"{dropped['cache_key']}.json"))
        with open(ckpt, "w") as handle:
            json.dump(payload, handle)

        resumed = MatrixRunner(
            cache_dir=cache, checkpoint=ckpt, resume=True
        ).run(self._jobs())

        # The two checkpointed jobs were reused verbatim; the third
        # re-executed; the canonical manifest matches end to end.
        assert [r.status for r in resumed.manifest.jobs] == ["ok", "ok", "ok"]
        assert (resumed.manifest.canonical_dict()
                == reference.manifest.canonical_dict())
        for ours, ref in zip(resumed.results, reference.results):
            assert ours.to_json() == ref.to_json()

    def test_resume_with_stale_cache_reexecutes(self, tmp_path):
        cache = str(tmp_path / "cache")
        ckpt = str(tmp_path / "manifest.json")
        MatrixRunner(cache_dir=cache, checkpoint=ckpt).run(self._jobs())
        # Nuke the whole cache: the checkpoint alone cannot serve
        # results, so every job must re-execute.
        for entry in os.listdir(cache):
            os.unlink(os.path.join(cache, entry))
        resumed = MatrixRunner(
            cache_dir=cache, checkpoint=ckpt, resume=True
        ).run(self._jobs())
        assert [r.status for r in resumed.manifest.jobs] == ["ok", "ok", "ok"]

    def test_resume_with_missing_checkpoint_is_cold_start(self, tmp_path):
        runner = MatrixRunner(
            cache_dir=str(tmp_path / "cache"),
            checkpoint=str(tmp_path / "never-written.json"),
            resume=True,
        )
        outcome = runner.run(self._jobs())
        assert all(r.status == "ok" for r in outcome.manifest.jobs)

    def test_checkpoint_survives_failures(self, tmp_path):
        ckpt = str(tmp_path / "manifest.json")
        jobs = [
            MatrixJob(sut_factory=FastSUT, scenario=_scenario(), label="good"),
            MatrixJob(sut_factory=ExplodingSUT, scenario=_scenario(seed=6),
                      label="bad"),
        ]
        MatrixRunner(
            workers=2, checkpoint=ckpt, max_attempts=1, retry_backoff=0.0
        ).run(jobs)
        saved = RunManifest.load(ckpt)
        statuses = {r.label: r.status for r in saved.jobs}
        assert statuses == {"good": "ok", "bad": "failed"}
