"""Multi-tenant serving (`repro.core.tenancy`).

Pins the serve contract: deterministic per-tenant results at fixed
seeds regardless of concurrency, replayable token-bucket admission,
hold-out single-shot enforcement through the service API, tenant
failure isolation, and the ledger reconciliation the smoke benchmark
gates on.
"""

import json

import pytest

from repro.core.benchmark import Benchmark, BenchmarkConfig
from repro.core.scenario import Scenario, Segment
from repro.core.streaming import load_spilled_columns
from repro.core.sut import SystemUnderTest
from repro.core.tenancy import (
    AdmissionPolicy,
    BenchmarkServer,
    ServiceReport,
    TenantSpec,
    TokenBucket,
    sla_accounting,
)
from repro.errors import TenancyError
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec


def _scenario(name="serve-1", rate=20.0, duration=2.0, seed=3):
    return Scenario(
        name=name,
        segments=[
            Segment(
                spec=simple_spec("w", UniformDistribution(0, 100), rate=rate),
                duration=duration,
            )
        ],
        seed=seed,
    )


class TinySUT(SystemUnderTest):
    def __init__(self, name="tiny"):
        super().__init__(name)

    def setup(self, pairs):
        pass

    def execute(self, query, now):
        return 0.001


class AngrySUT(SystemUnderTest):
    """Raises on the first executed query — a doomed tenant."""

    def __init__(self, name="angry"):
        super().__init__(name)

    def setup(self, pairs):
        pass

    def execute(self, query, now):
        raise RuntimeError("db on fire")


def _tenants(n, shards=1, seed_base=10, arrival_spacing=0.0):
    return [
        TenantSpec(
            name=f"t{i}",
            sut_factory=(lambda i=i: TinySUT(f"sut-{i}")),
            scenario=_scenario(),
            seed=seed_base + i,
            shards=shards,
            arrival_time=i * arrival_spacing,
        )
        for i in range(n)
    ]


class TestTokenBucket:
    def test_burst_must_be_positive(self):
        with pytest.raises(TenancyError):
            TokenBucket(AdmissionPolicy(burst=0))

    def test_refill_must_be_non_negative(self):
        with pytest.raises(TenancyError):
            TokenBucket(AdmissionPolicy(refill_rate=-1.0))

    def test_burst_then_empty(self):
        bucket = TokenBucket(AdmissionPolicy(burst=2, refill_rate=0.0))
        assert [bucket.admit(0.0) for _ in range(3)] == [True, True, False]

    def test_refill_over_virtual_time(self):
        bucket = TokenBucket(AdmissionPolicy(burst=1, refill_rate=1.0))
        assert bucket.admit(0.0)
        assert not bucket.admit(0.5)
        assert bucket.admit(2.0)  # 1.5 virtual seconds refilled

    def test_arrival_times_must_be_monotonic(self):
        bucket = TokenBucket(AdmissionPolicy())
        bucket.admit(5.0)
        with pytest.raises(TenancyError):
            bucket.admit(4.0)


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(TenancyError):
            BenchmarkServer(workers=0)

    def test_duplicate_tenant_names(self):
        server = BenchmarkServer(workers=1)
        spec = TenantSpec(name="t", sut_factory=TinySUT, scenario=_scenario())
        with pytest.raises(TenancyError, match="duplicate"):
            server.serve([spec, spec])

    def test_exactly_one_of_scenario_and_holdout(self):
        server = BenchmarkServer(workers=1)
        with pytest.raises(TenancyError, match="exactly one"):
            server.serve([TenantSpec(name="t", sut_factory=TinySUT)])

    def test_unknown_holdout_named(self):
        server = BenchmarkServer(workers=1)
        with pytest.raises(TenancyError, match="unknown hold-out"):
            server.serve(
                [TenantSpec(name="t", sut_factory=TinySUT, holdout="nope")]
            )

    def test_holdout_seed_override_forbidden(self):
        server = BenchmarkServer(workers=1)
        server.publish_holdout(_scenario("sealed"))
        with pytest.raises(TenancyError, match="seed"):
            server.serve(
                [
                    TenantSpec(
                        name="t",
                        sut_factory=TinySUT,
                        holdout="sealed",
                        seed=9,
                    )
                ]
            )

    def test_shards_must_be_positive(self):
        server = BenchmarkServer(workers=1)
        with pytest.raises(TenancyError, match="shards"):
            server.serve(
                [
                    TenantSpec(
                        name="t",
                        sut_factory=TinySUT,
                        scenario=_scenario(),
                        shards=0,
                    )
                ]
            )

    def test_arrival_time_must_be_non_negative(self):
        server = BenchmarkServer(workers=1)
        with pytest.raises(TenancyError, match="arrival_time"):
            server.serve(
                [
                    TenantSpec(
                        name="t",
                        sut_factory=TinySUT,
                        scenario=_scenario(),
                        arrival_time=-1.0,
                    )
                ]
            )


class TestServeDeterminism:
    def test_concurrent_matches_serial(self):
        # The acceptance contract: per-tenant summaries depend only on
        # (scenario, seed, config), never on the concurrency level.
        serial = BenchmarkServer(workers=1).serve(
            _tenants(4, shards=2), sla=0.01
        )
        concurrent = BenchmarkServer(workers=4).serve(
            _tenants(4, shards=2), sla=0.01
        )
        assert serial.completed == concurrent.completed == 4
        for a, b in zip(serial.tenants, concurrent.tenants):
            assert a.summary.to_dict() == b.summary.to_dict()
            assert a.sla_report == b.sla_report

    def test_repeat_serve_is_identical(self):
        first = BenchmarkServer(workers=2).serve(_tenants(3), sla=0.01)
        second = BenchmarkServer(workers=2).serve(_tenants(3), sla=0.01)
        for a, b in zip(first.tenants, second.tenants):
            assert a.summary.to_dict() == b.summary.to_dict()

    def test_distinct_seeds_distinct_streams(self):
        report = BenchmarkServer(workers=1).serve(_tenants(2))
        a, b = report.tenants
        assert a.seed != b.seed
        assert a.summary.to_dict() != b.summary.to_dict()


class TestAdmission:
    def test_burst_limits_admissions(self):
        server = BenchmarkServer(
            workers=1, admission=AdmissionPolicy(burst=2, refill_rate=0.0)
        )
        report = server.serve(_tenants(5))
        assert report.offered == 5
        assert report.admitted == 2
        assert report.rejected == 3
        assert report.completed == 2
        assert report.dropped == 0
        rejected = [t for t in report.tenants if t.status == "rejected"]
        assert len(rejected) == 3
        assert all(t.summary is None for t in rejected)
        assert all("token bucket empty" in t.error for t in rejected)

    def test_refill_admits_spaced_arrivals(self):
        server = BenchmarkServer(
            workers=1, admission=AdmissionPolicy(burst=1, refill_rate=1.0)
        )
        report = server.serve(_tenants(3, arrival_spacing=2.0))
        assert report.admitted == 3
        assert report.rejected == 0

    def test_no_admission_policy_admits_everyone(self):
        report = BenchmarkServer(workers=1).serve(_tenants(4))
        assert report.admitted == 4 and report.rejected == 0


class TestHoldoutVault:
    def test_single_shot_through_service_api(self):
        server = BenchmarkServer(workers=1)
        fingerprint = server.publish_holdout(_scenario("sealed"))
        first = server.serve(
            [
                TenantSpec(
                    name="t1",
                    sut_factory=lambda: TinySUT("same"),
                    holdout="sealed",
                )
            ]
        )
        assert first.tenant("t1").ok
        assert first.tenant("t1").fingerprint == fingerprint
        second = server.serve(
            [
                TenantSpec(
                    name="t2",
                    sut_factory=lambda: TinySUT("same"),
                    holdout="sealed",
                )
            ]
        )
        violation = second.tenant("t2")
        assert violation.status == "violation"
        assert "exactly once" in violation.error
        assert violation.fingerprint == fingerprint
        assert second.violations == 1 and second.dropped == 0

    def test_other_suts_unaffected_by_violation(self):
        server = BenchmarkServer(workers=1)
        server.publish_holdout(_scenario("sealed"))
        report = server.serve(
            [
                TenantSpec(
                    name="t1",
                    sut_factory=lambda: TinySUT("a"),
                    holdout="sealed",
                ),
                TenantSpec(
                    name="t2",
                    sut_factory=lambda: TinySUT("a"),
                    holdout="sealed",
                ),
                TenantSpec(
                    name="t3",
                    sut_factory=lambda: TinySUT("b"),
                    holdout="sealed",
                ),
            ]
        )
        assert report.tenant("t1").ok
        assert report.tenant("t2").status == "violation"
        assert report.tenant("t3").ok
        assert report.completed == 2 and report.violations == 1


class TestFailureIsolation:
    def test_failed_tenant_does_not_abort_others(self):
        server = BenchmarkServer(workers=1, retry_backoff=0.0)
        tenants = [
            TenantSpec(
                name="good",
                sut_factory=lambda: TinySUT("good"),
                scenario=_scenario(),
            ),
            TenantSpec(
                name="bad",
                sut_factory=lambda: AngrySUT("bad"),
                scenario=_scenario(),
            ),
        ]
        report = server.serve(tenants)
        assert report.tenant("good").ok
        bad = report.tenant("bad")
        assert bad.status == "failed"
        assert "failed after 2 attempts" in bad.error
        assert "db on fire" in bad.error
        assert report.completed == 1
        assert report.failed == 1
        assert report.dropped == 0

    def test_failed_tenant_isolated_across_processes(self):
        server = BenchmarkServer(workers=2, retry_backoff=0.0)
        tenants = [
            TenantSpec(
                name="good",
                sut_factory=lambda: TinySUT("good"),
                scenario=_scenario(),
            ),
            TenantSpec(
                name="bad",
                sut_factory=lambda: AngrySUT("bad"),
                scenario=_scenario(),
            ),
        ]
        report = server.serve(tenants)
        assert report.tenant("good").ok
        assert report.tenant("bad").status == "failed"
        assert report.dropped == 0


class TestSlaReports:
    def test_per_tenant_sla_report(self):
        report = BenchmarkServer(workers=1).serve(_tenants(2), sla=0.01)
        for tenant in report.tenants:
            sla = tenant.sla_report
            assert sla["sla"] == 0.01
            assert sla["queries"] == tenant.summary.num_queries
            assert sla["mean_throughput"] > 0
            assert sla["within_sla"] + sla["violated_sla"] == sla["queries"]
            assert sla["meets_sla"] is (sla["violated_sla"] == 0)

    def test_tenant_sla_overrides_serve_sla(self):
        tenants = _tenants(1)
        tenants[0].sla = 0.5
        report = BenchmarkServer(workers=1).serve(tenants, sla=0.001)
        assert report.tenants[0].sla_report["sla"] == 0.5

    def test_sla_accounting_without_sla(self):
        report = BenchmarkServer(workers=1).serve(_tenants(1))
        sla = report.tenants[0].sla_report
        assert sla["sla"] is None
        assert "within_sla" not in sla
        assert sla["latency_mean"] > 0

    def test_sla_accounting_is_pure(self):
        report = BenchmarkServer(workers=1).serve(_tenants(1), sla=0.01)
        tenant = report.tenants[0]
        assert sla_accounting(tenant.summary, 0.01) == tenant.sla_report


class TestReports:
    def test_service_report_round_trip(self):
        server = BenchmarkServer(
            workers=1, admission=AdmissionPolicy(burst=2, refill_rate=0.0)
        )
        report = server.serve(_tenants(3), sla=0.01)
        payload = json.loads(json.dumps(report.to_dict()))
        assert ServiceReport.from_dict(payload).to_dict() == report.to_dict()

    def test_tenant_accessor(self):
        report = BenchmarkServer(workers=1).serve(_tenants(2))
        assert report.tenant("t1").tenant == "t1"
        with pytest.raises(TenancyError):
            report.tenant("nope")

    def test_empty_window(self):
        report = BenchmarkServer(workers=1).serve([])
        assert report.offered == 0
        assert report.tenants == []


class TestSpill:
    def test_tenant_columns_spill_and_reload(self, tmp_path):
        report = BenchmarkServer(workers=1).serve(
            _tenants(2, shards=2), spill_dir=tmp_path
        )
        for tenant in report.tenants:
            columns = load_spilled_columns(tmp_path / tenant.tenant)
            assert columns.arrivals.size == tenant.summary.num_queries


class TestBenchmarkFacade:
    def test_serve_passthrough(self):
        report = Benchmark(BenchmarkConfig()).serve(_tenants(2), workers=1)
        assert report.completed == 2
