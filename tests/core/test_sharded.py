"""Sharded streaming: plan shapes, merge equivalence, crash recovery."""

from __future__ import annotations

import json
import os
from functools import partial
from pathlib import Path

import numpy as np
import pytest

from repro.core.benchmark import Benchmark, BenchmarkConfig
from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.core.sharded import (
    ShardedStreamingExecutor,
    plan_shards,
    run_sharded_streaming,
)
from repro.core.streaming import (
    ShardSpec,
    StreamingRunSummary,
    load_spilled_columns,
)
from repro.errors import ConfigurationError, RunnerError
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec


def _multi_segment_scenario(n_segments=2, rate=150.0, duration=2.0):
    spec = simple_spec("steady", UniformDistribution(0, 1000), rate=rate)
    labels = "abcdefgh"
    return Scenario(
        name="shard-smoke",
        segments=[
            Segment(spec=spec, duration=duration, label=labels[i])
            for i in range(n_segments)
        ],
        seed=3,
        initial_keys=np.linspace(0.0, 1000.0, 500),
    )


def _single_segment_scenario(rate=200.0, duration=4.0):
    spec = simple_spec("steady", UniformDistribution(0, 1000), rate=rate)
    return Scenario(
        name="shard-single",
        segments=[Segment(spec=spec, duration=duration, label="only")],
        seed=7,
        initial_keys=np.linspace(0.0, 1000.0, 500),
    )


def _assert_metrics_match(reference, merged, path="metrics"):
    """Recursive metric equality: ints/strings exact, floats to 1e-9.

    Integer-count payloads (grid counts, bands, histograms) must be
    bit-identical under any shard plan; float summaries that pass
    through the Chan mean/variance combine (latency mean/std, segment
    mean latency) may drift by a ULP, so those compare to relative
    tolerance. See DESIGN.md §10 for the taxonomy.
    """
    if isinstance(reference, dict):
        assert isinstance(merged, dict) and set(reference) == set(merged), path
        for key in reference:
            _assert_metrics_match(reference[key], merged[key], f"{path}.{key}")
    elif isinstance(reference, (list, tuple)):
        assert len(reference) == len(merged), path
        for i, (a, b) in enumerate(zip(reference, merged)):
            _assert_metrics_match(a, b, f"{path}[{i}]")
    elif isinstance(reference, float):
        assert merged == pytest.approx(reference, rel=1e-9, abs=1e-12), (
            f"{path}: {reference!r} != {merged!r}"
        )
    else:
        assert reference == merged, f"{path}: {reference!r} != {merged!r}"


def _crashing_factory(marker):
    # First worker to run dies hard (no exception, no pipe message);
    # every later attempt finds the marker and builds a real SUT.
    if not os.path.exists(marker):
        Path(marker).touch()
        os._exit(3)
    return TraditionalKVStore()


def _failing_factory():
    raise ValueError("boom")


class _SummingAccumulator:
    """Minimal custom accumulator implementing the merge protocol."""

    name = "summing"

    def __init__(self, total=0):
        self.total = int(total)

    def fold(self, block):
        self.total += len(block)

    def merge(self, other):
        self.total += other.total

    def state_dict(self):
        return {"total": self.total}

    @classmethod
    def from_state(cls, state):
        return cls(state["total"])

    def finalize(self, horizon):
        return {"total": self.total}


def _summing_factory(scenario):
    return [_SummingAccumulator()]


class _NoProtocolAccumulator:
    name = "no-protocol"

    def fold(self, block):
        pass

    def finalize(self, horizon):
        return {}


def _no_protocol_factory(scenario):
    return [_NoProtocolAccumulator()]


class TestPlanShards:
    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_shards(_multi_segment_scenario(), 0)

    def test_one_shard_is_the_whole_scenario(self):
        plan = plan_shards(_multi_segment_scenario(3), 1)
        assert plan == [ShardSpec(0, 1, 0, 3)]

    def test_segment_plan_is_contiguous_and_capped(self):
        scenario = _multi_segment_scenario(3)
        plan = plan_shards(scenario, 8)  # more shards than segments
        assert len(plan) == 3
        assert plan[0].segment_lo == 0
        assert plan[-1].segment_hi == 3
        for previous, following in zip(plan, plan[1:]):
            assert previous.segment_hi == following.segment_lo
        assert all(spec.arrival_lo is None for spec in plan)

    def test_single_segment_plan_slices_arrivals(self):
        scenario = _single_segment_scenario(rate=200.0, duration=4.0)
        plan = plan_shards(scenario, 4)
        assert len(plan) == 4
        assert plan[0].arrival_lo == 0
        assert plan[-1].arrival_hi == 800
        for previous, following in zip(plan, plan[1:]):
            assert previous.arrival_hi == following.arrival_lo

    def test_plan_is_deterministic(self):
        scenario = _multi_segment_scenario(4)
        assert plan_shards(scenario, 3) == plan_shards(scenario, 3)

    def test_shard_spec_round_trips(self):
        for spec in (ShardSpec(1, 4, 0, 1, 25, 50), ShardSpec(0, 2, 0, 3)):
            assert ShardSpec.from_dict(spec.to_dict()) == spec


class TestMergeEquivalence:
    def _reference(self, scenario):
        return VirtualClockDriver(DriverConfig()).run_streaming(
            TraditionalKVStore(), scenario
        )

    @pytest.mark.parametrize("shards", [2, 4])
    def test_segment_sharded_run_matches_unsharded(self, shards):
        scenario_builder = partial(_multi_segment_scenario, 4)
        reference = self._reference(scenario_builder())
        merged = run_sharded_streaming(
            TraditionalKVStore, scenario_builder(), shards=shards
        )
        assert merged.num_queries == reference.num_queries
        assert merged.op_counts == reference.op_counts
        assert merged.segment_counts == reference.segment_counts
        assert merged.max_completion == reference.max_completion
        _assert_metrics_match(reference.metrics, merged.metrics)
        assert merged.sharding is not None
        assert merged.sharding["boundaries_drained"] is True
        assert merged.sharding["shards"] == shards
        assert sum(merged.sharding["shard_queries"]) == merged.num_queries

    def test_arrival_sliced_run_matches_unsharded(self):
        reference = self._reference(_single_segment_scenario())
        merged = run_sharded_streaming(
            TraditionalKVStore, _single_segment_scenario(), shards=3
        )
        assert merged.num_queries == reference.num_queries
        assert merged.op_counts == reference.op_counts
        assert merged.segment_counts == reference.segment_counts
        # The btree SUT's service times are stateless, so even float
        # summaries agree bit-for-bit here; integer counts always must.
        _assert_metrics_match(reference.metrics, merged.metrics)

    def test_benchmark_facade_runs_sharded(self):
        bench = Benchmark(BenchmarkConfig())
        merged = bench.run_sharded_streaming(
            TraditionalKVStore, _multi_segment_scenario(), shards=2
        )
        reference = self._reference(_multi_segment_scenario())
        assert merged.num_queries == reference.num_queries
        _assert_metrics_match(reference.metrics, merged.metrics)

    def test_merged_spill_reassembles_in_arrival_order(self, tmp_path):
        reference_dir = tmp_path / "reference"
        sharded_dir = tmp_path / "sharded"
        VirtualClockDriver(DriverConfig()).run_streaming(
            TraditionalKVStore(),
            _multi_segment_scenario(3),
            spill_dir=str(reference_dir),
        )
        merged = run_sharded_streaming(
            TraditionalKVStore,
            _multi_segment_scenario(3),
            shards=3,
            spill_dir=str(sharded_dir),
        )
        assert merged.spill is not None and merged.spill["sharded"] is True
        reference = load_spilled_columns(reference_dir)
        stitched = load_spilled_columns(sharded_dir)
        assert stitched.op_vocab == reference.op_vocab
        assert stitched.segment_vocab == reference.segment_vocab
        for name in (
            "arrivals", "starts", "completions", "op_codes", "segment_codes",
        ):
            assert np.array_equal(
                getattr(stitched, name), getattr(reference, name)
            ), f"column {name!r} diverged after shard merge"

    def test_summary_round_trips_with_sharding(self):
        merged = run_sharded_streaming(
            TraditionalKVStore, _multi_segment_scenario(), shards=2
        )
        payload = json.loads(json.dumps(merged.to_dict()))
        clone = StreamingRunSummary.from_dict(payload)
        assert clone.sharding == merged.sharding
        assert clone.num_queries == merged.num_queries
        assert clone.metrics == merged.metrics

    def test_unsharded_summary_omits_sharding_key(self):
        summary = self._reference(_multi_segment_scenario())
        assert summary.sharding is None
        assert "sharding" not in summary.to_dict()

    def test_custom_accumulator_protocol_is_honored(self):
        merged = run_sharded_streaming(
            TraditionalKVStore,
            _multi_segment_scenario(),
            shards=2,
            accumulator_factory=_summing_factory,
        )
        assert merged.metrics["summing"]["total"] == merged.num_queries

    def test_accumulator_without_protocol_rejected_up_front(self):
        executor = ShardedStreamingExecutor(n_shards=2)
        with pytest.raises(ConfigurationError, match="merge protocol"):
            executor.run(
                TraditionalKVStore,
                _multi_segment_scenario(),
                accumulator_factory=_no_protocol_factory,
            )


class TestCrashRecovery:
    def test_crashed_shard_retries_and_merges_clean(self, tmp_path):
        marker = tmp_path / "crashed-once"
        reference = VirtualClockDriver(DriverConfig()).run_streaming(
            TraditionalKVStore(), _multi_segment_scenario()
        )
        merged = run_sharded_streaming(
            partial(_crashing_factory, str(marker)),
            _multi_segment_scenario(),
            shards=2,
            max_attempts=3,
            retry_backoff=0.0,
        )
        assert marker.exists()
        assert sum(merged.sharding["attempts"]) > merged.sharding["shards"]
        assert merged.num_queries == reference.num_queries
        _assert_metrics_match(reference.metrics, merged.metrics)

    def test_exhausted_retry_budget_raises(self):
        with pytest.raises(RunnerError, match="failed after"):
            run_sharded_streaming(
                _failing_factory,
                _multi_segment_scenario(),
                shards=2,
                max_attempts=1,
                retry_backoff=0.0,
            )

    def test_executor_validates_knobs(self):
        with pytest.raises(ConfigurationError):
            ShardedStreamingExecutor(n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedStreamingExecutor(max_attempts=0)
        with pytest.raises(ConfigurationError):
            ShardedStreamingExecutor(shard_timeout=0.0)
        with pytest.raises(ConfigurationError):
            ShardedStreamingExecutor(retry_backoff=-1.0)
