"""Scenario definitions and run-result records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phases import TrainingEvent, TrainingPhase
from repro.core.results import QueryRecord, RunResult
from repro.core.scenario import Scenario, Segment
from repro.errors import ReproError, ScenarioError
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec


def _segment(name="seg", duration=10.0, rate=5.0):
    return Segment(
        spec=simple_spec(name, UniformDistribution(0, 100), rate=rate),
        duration=duration,
    )


class TestScenario:
    def test_requires_segments(self):
        with pytest.raises(ScenarioError):
            Scenario(name="x", segments=[])

    def test_rejects_zero_duration_segment(self):
        with pytest.raises(ScenarioError):
            _segment(duration=0.0)

    def test_total_duration(self):
        scn = Scenario(name="x", segments=[_segment(duration=10), _segment(duration=5)])
        assert scn.total_duration == 15.0

    def test_segment_boundaries(self):
        scn = Scenario(
            name="x",
            segments=[_segment("a", 10), _segment("b", 5)],
        )
        assert scn.segment_boundaries() == [("a", 0.0, 10.0), ("b", 10.0, 15.0)]

    def test_label_defaults_to_spec_name(self):
        assert _segment("wl").label == "wl"

    def test_fingerprint_stable(self):
        a = Scenario(name="x", segments=[_segment()], seed=1)
        b = Scenario(name="x", segments=[_segment()], seed=1)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_changes_with_content(self):
        a = Scenario(name="x", segments=[_segment(rate=5)], seed=1)
        b = Scenario(name="x", segments=[_segment(rate=6)], seed=1)
        assert a.fingerprint() != b.fingerprint()

    def test_describe_includes_training(self):
        scn = Scenario(
            name="x",
            segments=[_segment()],
            initial_training=TrainingPhase(budget_seconds=3.0),
        )
        assert scn.describe()["initial_training"]["budget_seconds"] == 3.0


def _result():
    queries = [
        QueryRecord(arrival=float(i), start=float(i), completion=float(i) + 0.5,
                    op="read", segment="a" if i < 5 else "b")
        for i in range(10)
    ]
    return RunResult(
        sut_name="sut",
        scenario_name="scn",
        queries=queries,
        segments=[("a", 0.0, 5.0), ("b", 5.0, 10.0)],
        training_events=[
            TrainingEvent(start=-1.0, duration=1.0, nominal_seconds=1.0,
                          hardware_name="cpu", cost=0.01, online=False)
        ],
    )


class TestRunResult:
    def test_latency(self):
        record = QueryRecord(1.0, 2.0, 3.0, "read", "a")
        assert record.latency == 2.0
        assert record.service_time == 1.0

    def test_completions_sorted(self):
        result = _result()
        completions = result.completions()
        assert (np.diff(completions) >= 0).all()

    def test_queries_in_segment(self):
        result = _result()
        assert len(result.queries_in_segment("a")) == 5
        with pytest.raises(ReproError):
            result.queries_in_segment("nope")

    def test_throughput_series_sums_to_total(self):
        result = _result()
        _, counts = result.throughput_series(interval=1.0)
        assert counts.sum() == 10

    def test_mean_throughput(self):
        result = _result()
        # Horizon = segment end (10.0) since the last completion is 9.5.
        assert result.mean_throughput() == pytest.approx(1.0)

    def test_training_totals(self):
        result = _result()
        assert result.total_training_cost() == pytest.approx(0.01)
        assert result.total_training_nominal_seconds() == pytest.approx(1.0)

    def test_json_round_trip(self):
        result = _result()
        restored = RunResult.from_json(result.to_json())
        assert restored.sut_name == result.sut_name
        assert len(restored.queries) == len(result.queries)
        assert restored.queries[3].completion == result.queries[3].completion
        assert restored.segments == result.segments
        assert restored.training_events[0].cost == pytest.approx(0.01)


class TestRecorderAmortization:
    """`ColumnarRecorder._grow` must stay geometric (amortized O(1) appends)."""

    def test_appends_reallocate_logarithmically(self):
        from repro.core.results import ColumnarRecorder

        recorder = ColumnarRecorder(capacity=1024)
        n = 100_000
        for i in range(n):
            recorder.append(float(i), float(i), float(i) + 0.5, 0, 0)
        # Doubling from 1024 to >= 100k takes ceil(log2(n/1024)) = 7 grows;
        # allow a little slack but fail hard on accidental linear growth.
        assert recorder.reallocations <= int(np.ceil(np.log2(n / 1024))) + 2
        assert len(recorder) == n

    def test_reserve_avoids_reallocation_during_appends(self):
        from repro.core.results import ColumnarRecorder

        recorder = ColumnarRecorder(capacity=1024)
        recorder.reserve(50_000)
        grows_after_reserve = recorder.reallocations
        assert grows_after_reserve <= 1
        for i in range(50_000):
            recorder.append(float(i), float(i), float(i) + 0.5, 0, 0)
        assert recorder.reallocations == grows_after_reserve

    def test_block_append_counts_reallocations(self):
        from repro.core.results import ColumnarRecorder

        recorder = ColumnarRecorder(capacity=8)
        block = np.arange(16, dtype=np.float64)
        for _ in range(64):
            recorder.append_block(block, block, block + 0.5, np.zeros(16, np.int32), 0)
        assert len(recorder) == 1024
        assert recorder.reallocations <= 8  # log2(1024/8) + slack
