"""Fault injection: plan validation, the clock, and driver semantics."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.core.sut import SystemUnderTest
from repro.errors import ConfigurationError
from repro.faults import (
    CrashFault,
    DegradationFault,
    FaultClock,
    FaultPlan,
    LatencyFault,
    StallFault,
)
from repro.observability import Tracer
from repro.suts.analytic import (
    AnalyticDriver,
    AnalyticWorkload,
    LearnedOptimizerSUT,
    TraditionalOptimizerSUT,
    build_analytic_catalog,
)
from repro.workloads.distributions import UniformDistribution
from repro.workloads.drift import NoDrift
from repro.workloads.generators import simple_spec


class ConstantSUT(SystemUnderTest):
    """Fixed service time; optionally reports a cold-retrain on crash."""

    def __init__(self, service_time=0.001, crash_retrain_seconds=None):
        super().__init__("constant")
        self.service_time = service_time
        self.crash_retrain_seconds = crash_retrain_seconds
        self.crashes = []

    def setup(self, pairs):
        pass

    def execute(self, query, now):
        return self.service_time

    def on_crash(self, now):
        self.crashes.append(now)
        return self.crash_retrain_seconds


def _scenario(rate=50.0, duration=10.0, plan=None, seed=5):
    return Scenario(
        name="faulty",
        segments=[
            Segment(
                spec=simple_spec("s0", UniformDistribution(0, 100), rate=rate),
                duration=duration,
            )
        ],
        seed=seed,
        fault_plan=plan,
    )


def _run(plan=None, use_batching=True, sut=None, tracer=None, **scenario_kw):
    config = DriverConfig(use_batching=use_batching)
    driver = VirtualClockDriver(config, tracer=tracer)
    return driver.run(sut or ConstantSUT(), _scenario(plan=plan, **scenario_kw))


def _columns_equal(a, b):
    ca, cb = a.columns, b.columns
    return (
        np.array_equal(ca.arrivals, cb.arrivals)
        and np.array_equal(ca.starts, cb.starts)
        and np.array_equal(ca.completions, cb.completions)
        and np.array_equal(ca.latencies, cb.latencies)
    )


class TestFaultPlan:
    def test_empty_plan_is_falsy(self):
        assert not FaultPlan([])
        assert len(FaultPlan([])) == 0
        assert FaultPlan([StallFault(at=1.0, duration=0.5)])

    def test_validation_rejects_bad_windows(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([LatencyFault(start=5.0, end=5.0, multiplier=2.0)])
        with pytest.raises(ConfigurationError):
            FaultPlan([LatencyFault(start=0.0, end=5.0, multiplier=0.0)])
        with pytest.raises(ConfigurationError):
            FaultPlan([DegradationFault(start=3.0, end=1.0, added_seconds=0.1)])

    def test_validation_rejects_bad_points(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([StallFault(at=-1.0, duration=0.5)])
        with pytest.raises(ConfigurationError):
            FaultPlan([CrashFault(at=1.0, recovery_seconds=-0.1)])

    def test_duplicate_point_times_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan([
                StallFault(at=2.0, duration=0.5),
                CrashFault(at=2.0, recovery_seconds=1.0),
            ])

    def test_point_faults_sorted_windows_in_plan_order(self):
        plan = FaultPlan([
            StallFault(at=9.0, duration=1.0),
            LatencyFault(start=0.0, end=4.0, multiplier=2.0),
            CrashFault(at=2.0, recovery_seconds=0.5),
        ])
        assert [f.at for f in plan.point_faults] == [2.0, 9.0]
        assert [f.kind for f in plan.window_faults] == ["latency"]

    def test_degraded_windows_sorted(self):
        plan = FaultPlan([
            StallFault(at=9.0, duration=1.0),
            LatencyFault(start=0.0, end=4.0, multiplier=2.0),
        ])
        assert plan.degraded_windows() == [
            (0.0, 4.0, "latency"),
            (9.0, 10.0, "stall"),
        ]

    def test_describe_roundtrip(self):
        plan = FaultPlan([
            LatencyFault(start=1.0, end=2.0, multiplier=3.0),
            DegradationFault(start=4.0, end=6.0, added_seconds=0.01),
            StallFault(at=7.0, duration=0.5),
            CrashFault(at=8.0, recovery_seconds=1.5),
        ])
        clone = FaultPlan.from_dict(plan.describe())
        assert clone.describe() == plan.describe()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict([{"kind": "meteor", "at": 1.0}])


class TestFaultClock:
    def test_latency_window_scales_inside_only(self):
        clock = FaultClock(
            FaultPlan([LatencyFault(start=2.0, end=4.0, multiplier=10.0)])
        )
        services = np.full(4, 0.001)
        arrivals = np.array([1.0, 2.0, 3.999, 4.0])
        clock.perturb_batch(services, arrivals)
        np.testing.assert_allclose(services, [0.001, 0.01, 0.01, 0.001])

    def test_scalar_matches_batch(self):
        plan = FaultPlan([
            LatencyFault(start=0.0, end=5.0, multiplier=3.7),
            DegradationFault(start=3.0, end=8.0, added_seconds=0.013),
        ])
        clock = FaultClock(plan)
        rng = np.random.default_rng(0)
        services = rng.uniform(1e-4, 1e-2, 64)
        arrivals = np.sort(rng.uniform(0.0, 10.0, 64))
        batched = clock.perturb_batch(services.copy(), arrivals)
        scalar = np.array([
            clock.perturb(float(s), float(a))
            for s, a in zip(services, arrivals)
        ])
        assert np.array_equal(batched, scalar)

    def test_point_faults_in_bounds(self):
        plan = FaultPlan([
            StallFault(at=1.0, duration=0.1),
            CrashFault(at=5.0, recovery_seconds=0.1),
            StallFault(at=9.0, duration=0.1),
        ])
        clock = FaultClock(plan)
        assert [f.at for f in clock.point_faults_in(0.0, 5.0)] == [1.0]
        assert [f.at for f in clock.point_faults_in(5.0, 10.0)] == [5.0, 9.0]


class TestDriverFaults:
    PLAN = FaultPlan([
        LatencyFault(start=1.0, end=3.0, multiplier=5.0),
        DegradationFault(start=4.0, end=6.0, added_seconds=0.004),
        StallFault(at=6.5, duration=0.8),
        CrashFault(at=8.0, recovery_seconds=0.5),
    ])

    def test_scalar_batched_bit_identical_under_faults(self):
        batched = _run(plan=self.PLAN, use_batching=True)
        scalar = _run(plan=self.PLAN, use_batching=False)
        assert _columns_equal(batched, scalar)

    def test_deterministic_across_runs(self):
        first = _run(plan=self.PLAN)
        second = _run(plan=self.PLAN)
        assert _columns_equal(first, second)

    def test_out_of_horizon_plan_is_identity(self):
        late = FaultPlan([
            LatencyFault(start=500.0, end=600.0, multiplier=9.0),
            StallFault(at=700.0, duration=1.0),
        ])
        assert _columns_equal(_run(plan=late), _run(plan=None))

    def test_latency_window_slows_affected_queries(self):
        plain = _run(plan=None)
        slowed = _run(
            plan=FaultPlan([LatencyFault(start=2.0, end=8.0, multiplier=50.0)])
        )
        inside = (plain.columns.arrivals >= 2.0) & (plain.columns.arrivals < 8.0)
        assert (
            slowed.columns.latencies[inside] > plain.columns.latencies[inside]
        ).all()
        outside_before = plain.columns.arrivals < 2.0
        assert np.array_equal(
            slowed.columns.latencies[outside_before],
            plain.columns.latencies[outside_before],
        )

    def test_stall_delays_arrivals_in_window(self):
        stall = FaultPlan([StallFault(at=5.0, duration=1.0)])
        result = _run(plan=stall, rate=100.0)
        cols = result.columns
        during = (cols.arrivals >= 5.0) & (cols.arrivals < 6.0)
        assert during.any()
        # Nothing that arrived during the stall may start before it ends.
        assert (cols.starts[during] >= 6.0).all()

    def test_crash_emits_retrain_event_and_counters(self):
        tracer = Tracer()
        sut = ConstantSUT(crash_retrain_seconds=2.0)
        result = _run(
            plan=FaultPlan([CrashFault(at=5.0, recovery_seconds=1.0)]),
            sut=sut,
            tracer=tracer,
        )
        assert sut.crashes == [5.0]
        retrains = [
            e for e in result.training_events if e.label == "crash-retrain"
        ]
        assert len(retrains) == 1
        assert retrains[0].online
        assert retrains[0].start >= 6.0  # after the recovery outage
        trace = tracer.finish()
        assert trace.counter("driver.faults") == 1
        assert trace.counter("driver.fault_crashes") == 1
        assert any(s.phase == "fault" and s.name == "fault:crash"
                   for s in trace.walk())

    def test_stall_counter_and_span(self):
        tracer = Tracer()
        _run(plan=FaultPlan([StallFault(at=3.0, duration=0.5)]), tracer=tracer)
        trace = tracer.finish()
        assert trace.counter("driver.fault_stalls") == 1
        assert any(s.name == "fault:stall" for s in trace.walk())


class TestScenarioFaultSurface:
    def test_describe_key_only_when_plan_set(self):
        assert "faults" not in _scenario().describe()
        described = _scenario(plan=TestDriverFaults.PLAN).describe()
        assert [f["kind"] for f in described["faults"]] == [
            "latency", "degradation", "stall", "crash",
        ]

    def test_empty_plan_normalized_to_none(self):
        scenario = _scenario(plan=FaultPlan([]))
        assert scenario.fault_plan is None
        assert "faults" not in scenario.describe()

    def test_fingerprint_changes_with_plan(self):
        base = _scenario()
        faulted = replace(base, fault_plan=TestDriverFaults.PLAN)
        assert base.fingerprint() != faulted.fingerprint()


class TestAnalyticDriverFaults:
    # AnalyticWorkload is a stateful generator, so every run needs fresh
    # catalog + workload instances (fixtures would leak RNG state from
    # the first run into the second and break the identity check).

    PLAN = FaultPlan([
        LatencyFault(start=1.0, end=3.0, multiplier=4.0),
        StallFault(at=4.0, duration=0.5),
        CrashFault(at=6.0, recovery_seconds=0.5),
    ])

    @staticmethod
    def _workload():
        return AnalyticWorkload(
            threshold_drift=NoDrift(UniformDistribution(0.0, 300.0)),
            window=50.0,
            join_fraction=0.5,
            seed=9,
        )

    def _run(self, plan, use_batching):
        catalog = build_analytic_catalog(n_orders=1200, n_customers=120, seed=4)
        sut = TraditionalOptimizerSUT(catalog)
        driver = AnalyticDriver(
            seed=1, use_batching=use_batching, fault_plan=plan
        )
        return driver.run(sut, [("seg", self._workload(), 8.0, 12.0)])

    def test_scalar_batched_identical_under_faults(self):
        batched = self._run(self.PLAN, True)
        scalar = self._run(self.PLAN, False)
        assert _columns_equal(batched, scalar)

    def test_crash_resets_learned_optimizer(self):
        catalog = build_analytic_catalog(n_orders=1200, n_customers=120, seed=4)
        tracer = Tracer()
        sut = LearnedOptimizerSUT(catalog, seed=2, warmup_queries=5)
        driver = AnalyticDriver(
            seed=1,
            tracer=tracer,
            fault_plan=FaultPlan([CrashFault(at=4.0, recovery_seconds=0.5)]),
        )
        driver.run(sut, [("seg", self._workload(), 8.0, 10.0)])
        assert tracer.finish().counter("optimizer.crash_resets") == 1
