"""The virtual-clock driver: queueing, ticks, training placement."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
import pytest

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.phases import TrainingPhase
from repro.core.scenario import Scenario, Segment
from repro.core.sut import SystemUnderTest
from repro.errors import DriverError
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import KVQuery, simple_spec


class FakeSUT(SystemUnderTest):
    """Scriptable SUT: constant service time, optional tick retrains."""

    def __init__(
        self,
        service_time: float = 0.001,
        train_uses: float = 0.0,
        tick_retrain_at: Optional[float] = None,
        tick_nominal: float = 2.0,
    ) -> None:
        super().__init__("fake")
        self.service_time = service_time
        self.train_uses = train_uses
        self.tick_retrain_at = tick_retrain_at
        self.tick_nominal = tick_nominal
        self.executed: List[KVQuery] = []
        self.ticks: List[float] = []
        self.injected: List[Tuple[float, object]] = []
        self._retrained = False

    def setup(self, pairs):
        self.loaded = list(pairs)

    def inject(self, pairs):
        self.injected.extend(pairs)

    def execute(self, query, now):
        self.executed.append(query)
        return self.service_time

    def offline_train(self, budget_seconds):
        used = min(budget_seconds, self.train_uses)
        if used > 0:
            self.training.add(used)
        return used

    def on_tick(self, now):
        self.ticks.append(now)
        if (
            self.tick_retrain_at is not None
            and now >= self.tick_retrain_at
            and not self._retrained
        ):
            self._retrained = True
            return self.tick_nominal
        return None


def _scenario(rate=20.0, duration=5.0, segments=1, **kwargs):
    segs = [
        Segment(
            spec=simple_spec(f"s{i}", UniformDistribution(0, 100), rate=rate),
            duration=duration,
        )
        for i in range(segments)
    ]
    return Scenario(name="test", segments=segs, seed=5, **kwargs)


class TestBasicRun:
    def test_all_arrivals_executed(self):
        sut = FakeSUT()
        result = VirtualClockDriver().run(sut, _scenario())
        assert len(result.queries) == len(sut.executed)
        assert len(result.queries) == pytest.approx(100, abs=2)

    def test_records_have_ordered_timestamps(self):
        result = VirtualClockDriver().run(FakeSUT(), _scenario())
        for q in result.queries:
            assert q.arrival <= q.start < q.completion

    def test_completion_order_fifo(self):
        result = VirtualClockDriver().run(FakeSUT(), _scenario())
        completions = [q.completion for q in result.queries]
        assert completions == sorted(completions)

    def test_segment_labels_attached(self):
        result = VirtualClockDriver().run(FakeSUT(), _scenario(segments=2))
        labels = {q.segment for q in result.queries}
        assert labels == {"s0", "s1"}

    def test_deterministic(self):
        a = VirtualClockDriver().run(FakeSUT(), _scenario())
        b = VirtualClockDriver().run(FakeSUT(), _scenario())
        assert [q.completion for q in a.queries] == [q.completion for q in b.queries]

    def test_max_queries_guard(self):
        config = DriverConfig(max_queries=10)
        with pytest.raises(DriverError):
            VirtualClockDriver(config).run(FakeSUT(), _scenario(rate=100.0))

    def test_max_queries_checked_before_materializing(self, monkeypatch):
        """The guard fires on the projected count — before any arrival
        array for the offending segment is generated (regression: it used
        to materialize the full array first, then raise)."""
        from repro.workloads.patterns import ArrivalProcess

        def _explode(self, rng, start, end, jitter=True):
            raise AssertionError("arrival array materialized despite overflow")

        monkeypatch.setattr(ArrivalProcess, "arrivals", _explode)
        config = DriverConfig(max_queries=10)
        with pytest.raises(DriverError, match="projects"):
            VirtualClockDriver(config).run(FakeSUT(), _scenario(rate=100.0))

    def test_max_queries_overflow_spans_segments(self):
        """Earlier segments' counts accumulate into the projection."""
        config = DriverConfig(max_queries=150)
        # Two segments of ~100 queries each: neither alone overflows.
        with pytest.raises(DriverError):
            VirtualClockDriver(config).run(
                FakeSUT(), _scenario(rate=20.0, duration=5.0, segments=2)
            )

    def test_projected_count_matches_arrivals(self):
        spec = simple_spec("s", UniformDistribution(0, 100), rate=17.0)
        rng = np.random.default_rng(3)
        actual = spec.arrivals.arrivals(rng, 0.0, 7.5).size
        assert spec.arrivals.projected_count(0.0, 7.5) == actual


class TestQueueing:
    def test_overload_builds_queue(self):
        """Service slower than arrivals -> latencies grow over the run."""
        sut = FakeSUT(service_time=0.1)  # capacity 10/s < offered 20/s
        result = VirtualClockDriver().run(sut, _scenario(rate=20.0))
        latencies = [q.latency for q in sorted(result.queries, key=lambda q: q.arrival)]
        assert latencies[-1] > latencies[0]
        assert latencies[-1] > 1.0

    def test_underload_latency_equals_service(self):
        sut = FakeSUT(service_time=0.001)
        result = VirtualClockDriver().run(sut, _scenario(rate=20.0))
        assert max(q.latency for q in result.queries) < 0.01


class TestTraining:
    def test_initial_training_before_time_zero(self):
        sut = FakeSUT(train_uses=4.0)
        scn = _scenario(initial_training=TrainingPhase(budget_seconds=10.0))
        result = VirtualClockDriver().run(sut, scn)
        assert len(result.training_events) == 1
        event = result.training_events[0]
        assert event.start == pytest.approx(-4.0)
        assert not event.online
        assert event.nominal_seconds == pytest.approx(4.0)

    def test_budget_overuse_rejected(self):
        class Greedy(FakeSUT):
            def offline_train(self, budget_seconds):
                return budget_seconds + 1.0

        scn = _scenario(initial_training=TrainingPhase(budget_seconds=1.0))
        with pytest.raises(DriverError):
            VirtualClockDriver().run(Greedy(), scn)

    def test_zero_use_no_event(self):
        scn = _scenario(initial_training=TrainingPhase(budget_seconds=10.0))
        result = VirtualClockDriver().run(FakeSUT(train_uses=0.0), scn)
        assert result.training_events == []

    def test_between_segment_training_blocks(self):
        sut = FakeSUT(train_uses=2.0)
        scn = _scenario(segments=1)
        scn.segments.append(
            Segment(
                spec=simple_spec("s1", UniformDistribution(0, 100), rate=20.0),
                duration=5.0,
                training_before=TrainingPhase(budget_seconds=2.0),
            )
        )
        result = VirtualClockDriver().run(sut, scn)
        events = [e for e in result.training_events if e.start >= 0]
        assert len(events) == 1
        assert events[0].start >= 5.0  # at the segment boundary
        # Queries arriving right after the boundary wait out the retrain.
        late = [q for q in result.queries if 5.0 <= q.arrival < 5.5]
        assert late and min(q.start for q in late) >= events[0].end - 1e-9

    def test_online_tick_retrain_charged(self):
        sut = FakeSUT(tick_retrain_at=2.0, tick_nominal=1.5)
        result = VirtualClockDriver().run(sut, _scenario(duration=6.0))
        online = [e for e in result.training_events if e.online]
        assert len(online) == 1
        assert online[0].nominal_seconds == pytest.approx(1.5)
        # Server stalls: some query completes after the retrain window.
        assert any(q.start >= online[0].end for q in result.queries)


class TestTicks:
    def test_tick_cadence(self):
        sut = FakeSUT()
        VirtualClockDriver().run(sut, _scenario(duration=5.0))
        assert len(sut.ticks) == pytest.approx(5, abs=1)

    def test_tick_interval_configurable(self):
        sut = FakeSUT()
        scn = _scenario(duration=5.0)
        scn.tick_interval = 0.5
        VirtualClockDriver().run(sut, scn)
        assert len(sut.ticks) == pytest.approx(10, abs=1)


class TestDataInjection:
    def test_injection_delivered(self):
        sut = FakeSUT()
        scn = _scenario(segments=1)
        scn.segments.append(
            Segment(
                spec=simple_spec("s1", UniformDistribution(0, 100), rate=10.0),
                duration=3.0,
                data_injection=np.asarray([1.0, 2.0, 3.0]),
            )
        )
        VirtualClockDriver().run(sut, scn)
        assert [k for k, _ in sut.injected] == [1.0, 2.0, 3.0]

    def test_initial_keys_loaded(self):
        sut = FakeSUT()
        scn = _scenario()
        scn.initial_keys = np.asarray([5.0, 6.0])
        VirtualClockDriver().run(sut, scn)
        assert sut.loaded == [(5.0, 0), (6.0, 1)]


class TestMultiServer:
    def test_invalid_server_count(self):
        with pytest.raises(Exception):
            DriverConfig(servers=0)

    def test_more_servers_higher_capacity(self):
        """An overloaded single server recovers with parallel slots."""
        slow = FakeSUT(service_time=0.1)  # 10 q/s per slot vs 20 offered
        single = VirtualClockDriver(DriverConfig(servers=1)).run(
            slow, _scenario(rate=20.0)
        )
        fast = FakeSUT(service_time=0.1)
        quad = VirtualClockDriver(DriverConfig(servers=4)).run(
            fast, _scenario(rate=20.0)
        )
        assert max(q.latency for q in quad.queries) < 1.0
        assert max(q.latency for q in single.queries) > 1.0

    def test_parallel_starts_overlap(self):
        sut = FakeSUT(service_time=0.5)
        result = VirtualClockDriver(DriverConfig(servers=2)).run(
            sut, _scenario(rate=4.0, duration=5.0)
        )
        # With 2 servers, two queries can be in service simultaneously.
        ordered = sorted(result.queries, key=lambda q: q.start)
        overlaps = sum(
            1
            for a, b in zip(ordered, ordered[1:])
            if b.start < a.completion
        )
        assert overlaps > 0

    def test_online_retrain_blocks_all_servers(self):
        sut = FakeSUT(service_time=0.01, tick_retrain_at=2.0, tick_nominal=1.0)
        result = VirtualClockDriver(DriverConfig(servers=3)).run(
            sut, _scenario(rate=20.0, duration=6.0)
        )
        online = [e for e in result.training_events if e.online]
        assert len(online) == 1
        stall_end = online[0].end
        during = [
            q for q in result.queries
            if online[0].start < q.arrival < stall_end
        ]
        assert during and all(q.start >= stall_end - 1e-9 for q in during)

    def test_single_server_unchanged_by_refactor(self):
        a = VirtualClockDriver(DriverConfig(servers=1)).run(FakeSUT(), _scenario())
        b = VirtualClockDriver().run(FakeSUT(), _scenario())
        assert [q.completion for q in a.queries] == [q.completion for q in b.queries]
