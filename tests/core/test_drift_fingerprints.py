"""Drift factor in fingerprints and cache keys — change iff it changes.

The ``drift_factor`` field must enter scenario fingerprints (and hence
matrix cache keys) so sweep cells never collide, while *omitting* the
field keeps pre-PR fingerprints byte-identical — existing caches and
manifests stay valid.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.driver import DriverConfig
from repro.core.runner import JobRecord, MatrixJob, job_cache_key
from repro.data.datasets import build_dataset
from repro.scenarios import drift_axis, drift_axis_reference
from repro.suts.kv_traditional import TraditionalKVStore


@pytest.fixture(scope="module")
def dataset():
    return build_dataset("uniform", n=1000, seed=3)


def _axis(dataset, factor):
    return drift_axis(dataset, factor=factor, rate=100.0, segment_duration=1.0)


def _cache_key(scenario) -> str:
    job = MatrixJob(sut_factory=TraditionalKVStore, scenario=scenario)
    return job_cache_key(job, DriverConfig(), TraditionalKVStore().describe())


class TestFingerprint:
    def test_same_factor_same_fingerprint(self, dataset):
        assert (
            _axis(dataset, 0.25).fingerprint()
            == _axis(dataset, 0.25).fingerprint()
        )

    def test_different_factor_different_fingerprint(self, dataset):
        prints = {
            _axis(dataset, f).fingerprint() for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        }
        assert len(prints) == 5

    def test_factor_is_conditional_describe_key(self, dataset):
        """Scenarios without the field describe exactly as before the
        axis existed — no ``drift_factor`` key at all."""
        reference = drift_axis_reference(
            dataset, endpoint="base", rate=100.0, segment_duration=1.0
        )
        assert "drift_factor" not in reference.describe()
        assert _axis(dataset, 0.0).describe()["drift_factor"] == 0.0

    def test_factor_zero_differs_from_field_omitted(self, dataset):
        """Setting the field — even to 0 — is a *new* fingerprint; the
        blend at 0 is stream-identical but the axis cell is distinct."""
        axis = _axis(dataset, 0.0)
        reference = drift_axis_reference(
            dataset, endpoint="base", rate=100.0, segment_duration=1.0
        )
        # Normalize the intentional name difference, then compare: the
        # only remaining describe() delta is the drift_factor key.
        a = axis.describe()
        b = reference.describe()
        a.pop("name"), b.pop("name")
        factor = a.pop("drift_factor")
        assert factor == 0.0
        assert a == b

    def test_clearing_factor_restores_pre_axis_fingerprint(self, dataset):
        axis = _axis(dataset, 0.25)
        cleared = replace(axis, drift_factor=None)
        assert "drift_factor" not in cleared.describe()
        assert cleared.fingerprint() != axis.fingerprint()


class TestCacheKey:
    def test_key_changes_iff_factor_changes(self, dataset):
        key_a = _cache_key(_axis(dataset, 0.25))
        key_b = _cache_key(_axis(dataset, 0.25))
        key_c = _cache_key(_axis(dataset, 0.75))
        assert key_a == key_b
        assert key_a != key_c

    def test_seed_override_still_varies_key(self, dataset):
        scenario = _axis(dataset, 0.5)
        job_a = MatrixJob(sut_factory=TraditionalKVStore, scenario=scenario)
        job_b = MatrixJob(
            sut_factory=TraditionalKVStore, scenario=scenario, seed=999
        )
        desc = TraditionalKVStore().describe()
        assert job_cache_key(job_a, DriverConfig(), desc) != job_cache_key(
            job_b, DriverConfig(), desc
        )


class TestJobRecordPhi:
    def test_phi_round_trips_through_dict(self):
        record = JobRecord(
            label="btree-kv×drift-axis@0.5",
            sut_name="btree-kv",
            scenario_name="drift-axis@0.5",
            seed=19,
            cache_key="abc",
            status="ok",
            phi={"phi": 0.165, "phi_data": 0.224, "phi_workload": 0.106},
        )
        rebuilt = JobRecord.from_dict(record.to_dict())
        assert rebuilt.phi == record.phi

    def test_phi_defaults_to_none_for_old_manifests(self):
        payload = JobRecord(
            label="x",
            sut_name="s",
            scenario_name="c",
            seed=1,
            cache_key="k",
            status="cached",
        ).to_dict()
        payload.pop("phi")
        assert JobRecord.from_dict(payload).phi is None
