"""Hardware profiles and training phases/events."""

from __future__ import annotations

import pytest

from repro.core.hardware import CPU, GPU, TPU, HardwareProfile
from repro.core.phases import TrainingPhase, make_event
from repro.errors import ConfigurationError


class TestHardwareProfile:
    def test_wall_time_scales_by_speed(self):
        assert GPU.wall_time(120.0) == pytest.approx(10.0)
        assert CPU.wall_time(120.0) == pytest.approx(120.0)

    def test_cost_proportional_to_rate(self):
        assert CPU.cost(3600.0) == pytest.approx(CPU.dollars_per_hour)
        assert GPU.cost(1800.0) == pytest.approx(GPU.dollars_per_hour / 2)

    def test_cost_of_nominal_combines(self):
        # GPU: 12x speed at $2.50/h vs CPU $0.40/h.
        nominal = 3600.0
        assert GPU.cost_of_nominal(nominal) == pytest.approx(2.50 / 12)
        assert CPU.cost_of_nominal(nominal) == pytest.approx(0.40)

    def test_gpu_cheaper_per_nominal_than_cpu_here(self):
        """With these defaults, accelerators win on cost per unit work."""
        assert GPU.cost_of_nominal(1000) < CPU.cost_of_nominal(1000)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareProfile("bad", relative_speed=0.0, dollars_per_hour=1.0)
        with pytest.raises(ConfigurationError):
            HardwareProfile("bad", relative_speed=1.0, dollars_per_hour=-1.0)

    def test_builtin_ordering(self):
        assert CPU.relative_speed < GPU.relative_speed < TPU.relative_speed


class TestTrainingPhase:
    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigurationError):
            TrainingPhase(budget_seconds=-1.0)

    def test_defaults(self):
        phase = TrainingPhase(budget_seconds=10.0)
        assert phase.hardware is CPU
        assert phase.blocking


class TestTrainingEvent:
    def test_make_event_scales(self):
        event = make_event(start=5.0, nominal_seconds=120.0, hardware=GPU,
                           online=True, label="x")
        assert event.duration == pytest.approx(10.0)
        assert event.end == pytest.approx(15.0)
        assert event.cost == pytest.approx(GPU.cost(10.0))
        assert event.online and event.label == "x"
