"""Sealed hold-outs and benchmark-as-a-service."""

from __future__ import annotations

import pytest

from repro.core.benchmark import Benchmark
from repro.core.holdout import HoldoutRegistry
from repro.core.scenario import Scenario, Segment
from repro.core.service import BenchmarkService
from repro.core.sut import SystemUnderTest
from repro.errors import HoldoutViolationError, ReproError, ScenarioError
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec


def _scenario(name="holdout-1", rate=10.0):
    return Scenario(
        name=name,
        segments=[
            Segment(
                spec=simple_spec("w", UniformDistribution(0, 100), rate=rate),
                duration=3.0,
            )
        ],
        seed=2,
    )


class TinySUT(SystemUnderTest):
    def __init__(self, name="tiny"):
        super().__init__(name)

    def setup(self, pairs):
        pass

    def execute(self, query, now):
        return 0.001


class TestHoldoutRegistry:
    def test_register_returns_fingerprint(self):
        registry = HoldoutRegistry()
        fp = registry.register(_scenario())
        assert fp == _scenario().fingerprint()

    def test_reregister_same_content_ok(self):
        registry = HoldoutRegistry()
        registry.register(_scenario())
        registry.register(_scenario())  # idempotent
        assert registry.names() == ["holdout-1"]

    def test_reregister_different_content_rejected(self):
        registry = HoldoutRegistry()
        registry.register(_scenario(rate=10.0))
        with pytest.raises(ScenarioError):
            registry.register(_scenario(rate=20.0))

    def test_single_shot_per_sut(self):
        registry = HoldoutRegistry()
        registry.register(_scenario())
        registry.checkout("holdout-1", "sut-a")
        with pytest.raises(HoldoutViolationError):
            registry.checkout("holdout-1", "sut-a")

    def test_different_suts_independent(self):
        registry = HoldoutRegistry()
        registry.register(_scenario())
        registry.checkout("holdout-1", "sut-a")
        registry.checkout("holdout-1", "sut-b")  # fine
        assert registry.has_run("holdout-1", "sut-a")
        assert not registry.has_run("holdout-1", "sut-c")

    def test_unknown_holdout(self):
        registry = HoldoutRegistry()
        with pytest.raises(ScenarioError):
            registry.checkout("nope", "sut")


class TestBenchmarkService:
    def test_submit_runs_all_holdouts(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        service.publish_holdout(_scenario("h2"))
        reports = service.submit(lambda: TinySUT())
        assert [r.holdout_name for r in reports] == ["h1", "h2"]
        assert all(r.query_count > 0 for r in reports)
        assert all(r.mean_throughput > 0 for r in reports)

    def test_second_submission_blocked(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        service.submit(lambda: TinySUT())
        with pytest.raises(HoldoutViolationError):
            service.submit(lambda: TinySUT())

    def test_different_sut_name_allowed(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        service.submit(lambda: TinySUT("a"))
        reports = service.submit(lambda: TinySUT("b"))
        assert len(reports) == 1

    def test_raw_result_operator_access(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        service.submit(lambda: TinySUT("a"))
        result = service.raw_result("h1", "a")
        assert len(result.queries) > 0
        with pytest.raises(ReproError):
            service.raw_result("h1", "nobody")

    def test_report_fingerprint_verifiable(self):
        service = BenchmarkService()
        fp = service.publish_holdout(_scenario("h1"))
        reports = service.submit(lambda: TinySUT())
        assert reports[0].fingerprint == fp


class AngrySUT(SystemUnderTest):
    """Raises on the first executed query — a failing submission."""

    def __init__(self, name="angry"):
        super().__init__(name)

    def setup(self, pairs):
        pass

    def execute(self, query, now):
        raise RuntimeError("db on fire")


class TestServiceFailureAccounting:
    def test_failed_run_reports_error_and_refunds_budget(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        reports = service.submit(lambda: AngrySUT("fixable"))
        assert len(reports) == 1
        assert reports[0].error is not None
        assert "db on fire" in reports[0].error
        assert reports[0].query_count == 0
        # The failed run never leaked the hold-out, so the budget
        # survives and a fixed SUT under the same name may resubmit.
        assert not service.registry.has_run("h1", "fixable")
        retry = service.submit(lambda: TinySUT("fixable"))
        assert retry[0].error is None
        assert retry[0].query_count > 0

    def test_one_bad_run_does_not_burn_other_holdouts(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        service.publish_holdout(_scenario("h2"))
        reports = service.submit(lambda: AngrySUT("a"))
        assert [r.holdout_name for r in reports] == ["h1", "h2"]
        assert all(r.error is not None for r in reports)
        assert not service.registry.has_run("h1", "a")
        assert not service.registry.has_run("h2", "a")

    def test_mid_submission_violation_rolls_back_checkouts(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        service.publish_holdout(_scenario("h2"))
        # Consume only h2 for this SUT name, out of band: the next
        # submission survives h1's checkout, then hits the violation.
        service.registry.checkout("h2", "a")
        with pytest.raises(HoldoutViolationError):
            service.submit(lambda: TinySUT("a"))
        # h1's checkout from the doomed call was rolled back.
        assert not service.registry.has_run("h1", "a")

    def test_successful_report_has_no_error(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        reports = service.submit(lambda: TinySUT())
        assert reports[0].error is None

    def test_raw_result_error_names_available_holdouts(self):
        service = BenchmarkService()
        service.publish_holdout(_scenario("h1"))
        service.submit(lambda: TinySUT("a"))
        with pytest.raises(ReproError) as excinfo:
            service.raw_result("h1", "nobody")
        message = str(excinfo.value)
        assert "registered hold-outs" in message
        assert "h1" in message


class TestBenchmarkCompare:
    def test_compare_runs_fresh_instances(self):
        bench = Benchmark()
        scn = _scenario("cmp")
        results = bench.compare([lambda: TinySUT("a"), lambda: TinySUT("b")], scn)
        assert set(results.keys()) == {"a", "b"}
        assert all(len(r.queries) > 0 for r in results.values())
