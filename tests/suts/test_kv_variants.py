"""ALEX- and PGM-backed KV stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import Benchmark
from repro.core.phases import TrainingPhase
from repro.core.scenario import Scenario, Segment
from repro.suts.kv_traditional import TraditionalKVStore
from repro.suts.kv_variants import AlexKVStore, PGMKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import KVOperation, KVQuery, simple_spec


@pytest.fixture
def pairs(tiny_dataset):
    return tiny_dataset.pairs()


def _query(op, key, scan_length=0):
    return KVQuery(op=op, key=key, scan_length=scan_length)


class TestAlexStore:
    def test_basic_operations(self, pairs):
        store = AlexKVStore()
        store.setup(pairs)
        assert store.execute(_query(KVOperation.READ, pairs[10][0]), 0.0) > 0
        store.execute(_query(KVOperation.INSERT, 1e12), 0.0)
        assert store.stored_keys == len(pairs) + 1

    def test_no_scheduled_training(self, pairs):
        store = AlexKVStore()
        store.setup(pairs)
        assert store.offline_train(100.0) == 0.0
        assert store.on_tick(1.0) is None

    def test_insert_heavy_stream_stays_fast(self, pairs, tiny_dataset):
        """ALEX absorbs inserts without bulk-retrain stalls."""
        store = AlexKVStore()
        store.setup(pairs)
        rng = np.random.default_rng(2)
        times = []
        for key in rng.uniform(tiny_dataset.low, tiny_dataset.high, 1000):
            times.append(store.execute(_query(KVOperation.INSERT, float(key)), 0.0))
        # No single insert should cost a full rebuild.
        assert max(times) < 0.05

    def test_reads_after_inserts_correct_cost(self, pairs):
        store = AlexKVStore()
        store.setup(pairs)
        service = store.execute(_query(KVOperation.READ, pairs[100][0]), 0.0)
        assert 0 < service < 0.01


class TestPGMStore:
    def test_basic_operations(self, pairs):
        store = PGMKVStore()
        store.setup(pairs)
        assert store.execute(_query(KVOperation.READ, pairs[10][0]), 0.0) > 0

    def test_offline_train_merges_delta(self, pairs):
        store = PGMKVStore(max_delta=100_000)
        store.setup(pairs)
        for i in range(50):
            store.execute(_query(KVOperation.INSERT, 1e9 + i), 0.0)
        need = store.cost_model.full_retrain_seconds(store.stored_keys)
        used = store.offline_train(need * 2)
        assert used == pytest.approx(need)
        assert store.index.delta_size == 0

    def test_insufficient_budget_no_train(self, pairs):
        store = PGMKVStore()
        store.setup(pairs)
        assert store.offline_train(1e-9) == 0.0

    def test_bounded_lookup_cost_across_datasets(self):
        """PGM's per-lookup cost is ε-bounded regardless of data shape."""
        from repro.data.datasets import build_dataset

        costs = {}
        for name in ("uniform", "adversarial"):
            ds = build_dataset(name, n=10_000, seed=5)
            store = PGMKVStore(epsilon=32)
            store.setup(ds.pairs())
            rng = np.random.default_rng(1)
            total = sum(
                store.execute(_query(KVOperation.READ, float(k)), 0.0)
                for k in rng.choice(ds.keys, 100)
            )
            costs[name] = total
        ratio = costs["adversarial"] / costs["uniform"]
        assert 0.5 < ratio < 2.0


class TestVariantComparison:
    def test_all_variants_run_a_scenario(self, tiny_dataset):
        scenario = Scenario(
            name="variants",
            segments=[
                Segment(
                    spec=simple_spec(
                        "w",
                        UniformDistribution(tiny_dataset.low, tiny_dataset.high),
                        rate=150.0,
                        read_fraction=0.8,
                    ),
                    duration=4.0,
                )
            ],
            initial_training=TrainingPhase(budget_seconds=1e9),
            initial_keys=tiny_dataset.keys,
            seed=6,
        )
        bench = Benchmark()
        for factory in (AlexKVStore, PGMKVStore, TraditionalKVStore):
            result = bench.run(factory(), scenario)
            assert len(result.queries) > 500
            assert result.mean_throughput() > 0
