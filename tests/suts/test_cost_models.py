"""Virtual-time cost model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.indexes.base import IndexStats
from repro.suts.cost_models import KVCostModel


class TestServiceTime:
    def test_base_overhead_always_charged(self):
        model = KVCostModel()
        assert model.service_time(IndexStats()) == pytest.approx(model.base_overhead_s)

    def test_node_accesses_dominate(self):
        model = KVCostModel()
        cheap = model.service_time(IndexStats(node_accesses=1))
        expensive = model.service_time(IndexStats(node_accesses=10))
        assert expensive > cheap * 5

    def test_writes_add_cost(self):
        model = KVCostModel()
        read = model.service_time(IndexStats(node_accesses=1))
        write = model.service_time(IndexStats(node_accesses=1), writes=1)
        assert write - read == pytest.approx(model.insert_extra_s)

    def test_scan_items_charged(self):
        model = KVCostModel()
        base = model.service_time(IndexStats())
        scan = model.service_time(IndexStats(), scanned_items=100)
        assert scan - base == pytest.approx(100 * model.scan_per_item_s)

    def test_tuning_divides_time(self):
        model = KVCostModel()
        delta = IndexStats(node_accesses=4, comparisons=20)
        untuned = model.service_time(delta, tuning_level=0)
        tuned = model.service_time(delta, tuning_level=3)
        assert tuned == pytest.approx(untuned / model.tuning_speedups[3])

    def test_tuning_level_clamped(self):
        model = KVCostModel()
        delta = IndexStats(node_accesses=1)
        assert model.service_time(delta, tuning_level=99) == model.service_time(
            delta, tuning_level=len(model.tuning_speedups) - 1
        )

    def test_retrain_seconds_linear(self):
        model = KVCostModel()
        assert model.full_retrain_seconds(100_000) == pytest.approx(
            100_000 * model.train_per_key_s
        )

    def test_rejects_negative_constants(self):
        with pytest.raises(ConfigurationError):
            KVCostModel(node_access_s=-1.0)

    def test_rejects_zero_speedups(self):
        with pytest.raises(ConfigurationError):
            KVCostModel(tuning_speedups=(1.0, 0.0))
