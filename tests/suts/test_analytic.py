"""Analytic SUTs: workload generation, drivers, learned vs traditional."""

from __future__ import annotations

import numpy as np
import pytest

from repro.suts.analytic import (
    AnalyticDriver,
    AnalyticWorkload,
    LearnedOptimizerSUT,
    TraditionalOptimizerSUT,
    build_analytic_catalog,
)
from repro.workloads.distributions import UniformDistribution
from repro.workloads.drift import AbruptDrift, NoDrift


@pytest.fixture
def catalog():
    return build_analytic_catalog(n_orders=1500, n_customers=150, seed=4)


@pytest.fixture
def workload():
    return AnalyticWorkload(
        threshold_drift=NoDrift(UniformDistribution(0.0, 300.0)),
        window=50.0,
        join_fraction=0.5,
        seed=9,
    )


class TestWorkload:
    def test_queries_have_plans(self, workload):
        query = workload.next_query(0.0)
        assert query.kind in ("filter", "join")
        assert query.plan.tables()

    def test_join_fraction_respected(self):
        workload = AnalyticWorkload(
            threshold_drift=NoDrift(UniformDistribution(0, 100)),
            join_fraction=1.0,
            seed=1,
        )
        kinds = {workload.next_query(0.0).kind for _ in range(10)}
        assert kinds == {"join"}

    def test_drifting_thresholds(self):
        drift = AbruptDrift(
            [UniformDistribution(0, 10), UniformDistribution(500, 510)], [50.0]
        )
        workload = AnalyticWorkload(threshold_drift=drift, seed=1, join_fraction=0.0)
        early = workload.next_query(0.0)
        late = workload.next_query(100.0)
        early_lo = early.plan.children()[0].predicate.low
        late_lo = late.plan.children()[0].predicate.low
        assert early_lo < 10 and late_lo >= 500


class TestSUTs:
    def test_traditional_executes(self, catalog, workload):
        sut = TraditionalOptimizerSUT(catalog)
        sut.setup()
        service = sut.execute(workload.next_query(0.0), 0.0)
        assert service > 0

    def test_learned_executes_and_learns(self, catalog, workload):
        sut = LearnedOptimizerSUT(catalog, seed=2, warmup_queries=5)
        sut.setup()
        for i in range(12):
            sut.execute(workload.next_query(float(i)), float(i))
        assert sut.steering.decisions == 12
        assert sut.learned_cards.trained_examples > 0

    def test_learned_without_cardinality_model(self, catalog, workload):
        sut = LearnedOptimizerSUT(catalog, use_learned_cardinality=False)
        sut.setup()
        for i in range(5):
            sut.execute(workload.next_query(float(i)), float(i))
        assert sut.learned_cards.trained_examples == 0


class TestAnalyticDriver:
    def test_run_produces_result(self, catalog, workload):
        sut = TraditionalOptimizerSUT(catalog)
        driver = AnalyticDriver(seed=1)
        result = driver.run(sut, [("seg", workload, 5.0, 10.0)])
        assert len(result.queries) == 50
        assert result.segments == [("seg", 0.0, 5.0)]
        for q in result.queries:
            assert q.arrival <= q.start < q.completion

    def test_multi_segment(self, catalog, workload):
        sut = TraditionalOptimizerSUT(catalog)
        result = AnalyticDriver(seed=1).run(
            sut, [("a", workload, 3.0, 10.0), ("b", workload, 3.0, 10.0)]
        )
        assert {q.segment for q in result.queries} == {"a", "b"}

    def test_learned_improves_over_run(self, catalog):
        """Later queries should be no slower on average than early ones
        (the bandit converges to good arms)."""
        workload = AnalyticWorkload(
            threshold_drift=NoDrift(UniformDistribution(0.0, 300.0)),
            join_fraction=1.0,
            seed=3,
        )
        sut = LearnedOptimizerSUT(catalog, seed=5, warmup_queries=20)
        result = AnalyticDriver(seed=2).run(sut, [("seg", workload, 20.0, 8.0)])
        services = [q.service_time for q in sorted(result.queries, key=lambda q: q.arrival)]
        early = np.mean(services[:40])
        late = np.mean(services[-40:])
        assert late <= early * 1.5


class TestAnalyticDriverStreaming:
    def test_streaming_matches_in_memory(self, catalog, tmp_path):
        from repro.core.streaming import load_spilled_columns

        def schedule():
            # The workload draws from its own RNG, so each run needs a
            # fresh instance for the two paths to see identical streams.
            workload = AnalyticWorkload(
                threshold_drift=NoDrift(UniformDistribution(0.0, 300.0)),
                window=50.0,
                join_fraction=0.5,
                seed=9,
            )
            return [("a", workload, 3.0, 10.0), ("b", workload, 3.0, 10.0)]

        reference = AnalyticDriver(seed=1).run(
            TraditionalOptimizerSUT(catalog), schedule()
        )
        summary = AnalyticDriver(seed=1).run_streaming(
            TraditionalOptimizerSUT(catalog),
            schedule(),
            sla=0.5,
            spill_dir=str(tmp_path / "spill"),
        )
        cols = reference.columns
        assert summary.num_queries == cols.size
        assert summary.mean_throughput() == reference.mean_throughput()
        assert {"throughput", "adaptability", "latency", "sla"} <= set(
            summary.metrics
        )
        spilled = load_spilled_columns(summary.spill["directory"])
        for name in ("arrivals", "starts", "completions", "op_codes"):
            assert np.array_equal(getattr(spilled, name), getattr(cols, name))
        assert spilled.segment_vocab == cols.segment_vocab
