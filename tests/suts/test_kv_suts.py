"""Key-value systems under test: snapping, dispatch, training, adaptation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.suts.kv_learned import LearnedKVStore, StaticLearnedKVStore
from repro.suts.kv_traditional import HashKVStore, TraditionalKVStore
from repro.workloads.generators import KVOperation, KVQuery


@pytest.fixture
def pairs(tiny_dataset):
    return tiny_dataset.pairs()


def _query(op, key, scan_length=0):
    return KVQuery(op=op, key=key, scan_length=scan_length)


class TestKVBase:
    def test_read_snaps_to_nearest(self, pairs):
        sut = TraditionalKVStore()
        sut.setup(pairs)
        service = sut.execute(_query(KVOperation.READ, pairs[50][0] + 1e-7), 0.0)
        assert service > 0

    def test_read_on_empty_store(self):
        sut = TraditionalKVStore()
        sut.setup([])
        assert sut.execute(_query(KVOperation.READ, 1.0), 0.0) > 0

    def test_insert_grows_store(self, pairs):
        sut = TraditionalKVStore()
        sut.setup(pairs)
        before = sut.stored_keys
        sut.execute(_query(KVOperation.INSERT, 1e12), 0.0)
        assert sut.stored_keys == before + 1

    def test_update_does_not_grow(self, pairs):
        sut = TraditionalKVStore()
        sut.setup(pairs)
        before = sut.stored_keys
        sut.execute(_query(KVOperation.UPDATE, pairs[10][0]), 0.0)
        assert sut.stored_keys == before

    def test_scan_charges_per_item(self, pairs):
        sut = TraditionalKVStore()
        sut.setup(pairs)
        short = sut.execute(_query(KVOperation.SCAN, pairs[10][0], scan_length=2), 0.0)
        long = sut.execute(_query(KVOperation.SCAN, pairs[10][0], scan_length=500), 0.0)
        assert long > short

    def test_rmw_costs_more_than_read(self, pairs):
        sut = TraditionalKVStore()
        sut.setup(pairs)
        read = sut.execute(_query(KVOperation.READ, pairs[20][0]), 0.0)
        rmw = sut.execute(_query(KVOperation.READ_MODIFY_WRITE, pairs[20][0]), 0.0)
        assert rmw > read

    def test_inject_adds_keys_without_time(self, pairs):
        sut = TraditionalKVStore()
        sut.setup(pairs)
        sut.inject([(1e9, None), (2e9, None)])
        assert sut.stored_keys == len(pairs) + 2


class TestTraditional:
    def test_tuning_speeds_up(self, pairs):
        slow = TraditionalKVStore(tuning_level=0)
        fast = TraditionalKVStore(tuning_level=3)
        slow.setup(pairs)
        fast.setup(pairs)
        q = _query(KVOperation.READ, pairs[100][0])
        assert fast.execute(q, 0.0) < slow.execute(q, 0.0)

    def test_tune_monotone(self, pairs):
        sut = TraditionalKVStore(tuning_level=2)
        sut.tune(1)
        assert sut.tuning_level == 2
        sut.tune(3)
        assert sut.tuning_level == 3

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigurationError):
            TraditionalKVStore(tuning_level=99)

    def test_no_training(self, pairs):
        sut = TraditionalKVStore()
        sut.setup(pairs)
        assert sut.offline_train(100.0) == 0.0
        assert sut.on_tick(1.0) is None


class TestHashSUT:
    def test_scans_catastrophic(self, pairs):
        hash_sut = HashKVStore()
        btree_sut = TraditionalKVStore()
        hash_sut.setup(pairs)
        btree_sut.setup(pairs)
        q = _query(KVOperation.SCAN, pairs[10][0], scan_length=10)
        assert hash_sut.execute(q, 0.0) > 10 * btree_sut.execute(q, 0.0)

    def test_points_fast(self, pairs):
        hash_sut = HashKVStore()
        btree_sut = TraditionalKVStore()
        hash_sut.setup(pairs)
        btree_sut.setup(pairs)
        q = _query(KVOperation.READ, pairs[10][0])
        assert hash_sut.execute(q, 0.0) < btree_sut.execute(q, 0.0)


class TestLearnedKV:
    def test_offline_budget_buys_fanout(self, pairs):
        sut = LearnedKVStore(max_fanout=64)
        sut.setup(pairs)
        full = sut.cost_model.full_retrain_seconds(len(pairs))
        used = sut.offline_train(full / 2)
        assert used == pytest.approx(full / 2, rel=0.1)
        assert sut.trained_fanout == pytest.approx(32, abs=2)

    def test_full_budget_full_fanout(self, pairs):
        sut = LearnedKVStore(max_fanout=64)
        sut.setup(pairs)
        sut.offline_train(1e9)
        assert sut.trained_fanout == 64

    def test_zero_budget_no_training(self, pairs):
        sut = LearnedKVStore()
        sut.setup(pairs)
        assert sut.offline_train(0.0) == 0.0

    def test_more_training_faster_lookups(self, pairs):
        starved = LearnedKVStore(max_fanout=256)
        funded = LearnedKVStore(max_fanout=256)
        starved.setup(pairs)
        funded.setup(pairs)
        full = funded.cost_model.full_retrain_seconds(len(pairs))
        starved.offline_train(full * 0.02)
        funded.offline_train(full)
        rng = np.random.default_rng(0)
        sample = rng.choice([k for k, _ in pairs], 200)
        t_starved = sum(
            starved.execute(_query(KVOperation.READ, float(k)), 0.0) for k in sample
        )
        t_funded = sum(
            funded.execute(_query(KVOperation.READ, float(k)), 0.0) for k in sample
        )
        assert t_funded < t_starved

    def test_drift_triggers_online_retrain(self, pairs, tiny_dataset):
        sut = LearnedKVStore(drift_window=128, retrain_cooldown=0.0)
        sut.setup(pairs)
        sut.offline_train(1e9)
        span = tiny_dataset.high - tiny_dataset.low
        rng = np.random.default_rng(1)
        # Phase 1: hot at the bottom of the key space.
        for k in rng.uniform(tiny_dataset.low, tiny_dataset.low + span * 0.05, 400):
            sut.execute(_query(KVOperation.READ, float(k)), 0.0)
        assert sut.on_tick(1.0) is None  # stable: no retrain requested
        # Phase 2: hot at the top.
        for k in rng.uniform(tiny_dataset.high - span * 0.05, tiny_dataset.high, 400):
            sut.execute(_query(KVOperation.READ, float(k)), 1.5)
        nominal = sut.on_tick(2.0)
        assert nominal is not None and nominal > 0
        assert sut.training.sessions >= 2

    def test_static_variant_never_adapts(self, pairs, tiny_dataset):
        sut = StaticLearnedKVStore()
        sut.setup(pairs)
        sut.offline_train(1e9)
        span = tiny_dataset.high - tiny_dataset.low
        rng = np.random.default_rng(1)
        for k in rng.uniform(tiny_dataset.high - span * 0.05, tiny_dataset.high, 1500):
            sut.execute(_query(KVOperation.READ, float(k)), 0.0)
        assert sut.on_tick(5.0) is None

    def test_retrain_cooldown_respected(self, pairs):
        sut = LearnedKVStore(retrain_cooldown=10.0)
        sut.setup(pairs)
        sut.offline_train(1e9)
        sut._retrain_requested = True
        assert sut.on_tick(0.0) is not None
        sut._retrain_requested = True
        assert sut.on_tick(5.0) is None  # within cooldown
        assert sut.on_tick(20.0) is not None

    def test_describe_reports_state(self, pairs):
        sut = LearnedKVStore()
        sut.setup(pairs)
        sut.offline_train(1e9)
        info = sut.describe()
        assert info["trained_fanout"] == sut.trained_fanout
        assert info["adapt"] is True
