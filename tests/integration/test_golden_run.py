"""Golden end-to-end regression suite.

One fixed-seed KV matrix (learned + traditional stores through the full
MatrixRunner pipeline) and one fixed-seed analytic run produce a metric
payload — throughput series, SLA bands, adaptability summary, cost
breakdown — that is compared *exactly* against a checked-in golden JSON.

Virtual-clock timestamps are deterministic arithmetic over dyadic/seeded
inputs and JSON float round-trips are exact (shortest-repr), so the
comparison uses ``==`` on every float: any behavioral change to the
driver, the SUTs, the queueing kernel, or the metric kernels — even a
one-ULP drift — fails loudly (demonstrated by the perturbation test).

Regenerate after an *intentional* behavior change with::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/integration/test_golden_run.py
"""

from __future__ import annotations

import copy
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.phases import TrainingPhase
from repro.core.runner import MatrixRunner, matrix_jobs
from repro.core.scenario import Scenario, Segment
from repro.metrics.adaptability import adaptability_report
from repro.metrics.cost import cost_breakdown
from repro.metrics.sla import latency_bands
from repro.suts.analytic import (
    AnalyticDriver,
    AnalyticWorkload,
    LearnedOptimizerSUT,
    build_analytic_catalog,
)
from repro.suts.kv_learned import LearnedKVStore
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution, ZipfDistribution
from repro.workloads.drift import AbruptDrift, NoDrift
from repro.workloads.generators import (
    KVOperation,
    OperationMix,
    WorkloadSpec,
    simple_spec,
)
from repro.workloads.patterns import ConstantArrivals

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_run.json"

#: Fixed SLA for the golden latency bands (2 ms).
SLA_SECONDS = 0.002


def _kv_scenario() -> Scenario:
    """Two-segment drifting KV scenario with an offline training phase."""
    mix = OperationMix(
        {
            KVOperation.READ: 0.7,
            KVOperation.INSERT: 0.15,
            KVOperation.SCAN: 0.1,
            KVOperation.UPDATE: 0.05,
        }
    )
    spec_reads = simple_spec("steady", UniformDistribution(0, 1000), rate=300.0)
    spec_mixed = WorkloadSpec(
        name="drifted",
        mix=mix,
        key_drift=AbruptDrift(
            [UniformDistribution(0, 1000), ZipfDistribution(0, 1000, theta=1.2)],
            [1.0],
        ),
        arrivals=ConstantArrivals(300.0),
        scan_length_mean=16,
    )
    return Scenario(
        name="golden-kv",
        segments=[
            Segment(spec=spec_reads, duration=2.0),
            Segment(spec=spec_mixed, duration=2.0),
        ],
        seed=11,
        initial_keys=np.linspace(0, 1000, 2000),
        initial_training=TrainingPhase(budget_seconds=5.0),
    )


def _kv_factories():
    return {
        "learned-kv": lambda: LearnedKVStore(
            max_fanout=96, retrain_cooldown=1.0, drift_window=256
        ),
        "btree-kv": TraditionalKVStore,
    }


def _analytic_result():
    """Small fixed-seed analytic run: bandit steering over a real engine."""
    catalog = build_analytic_catalog(n_orders=800, n_customers=80, seed=2)
    steady = AnalyticWorkload(
        NoDrift(UniformDistribution(0.0, 200.0)),
        window=40.0,
        join_fraction=0.5,
        seed=5,
    )
    shifted = AnalyticWorkload(
        NoDrift(UniformDistribution(150.0, 400.0)),
        window=40.0,
        join_fraction=0.5,
        seed=6,
    )
    sut = LearnedOptimizerSUT(catalog, seed=4, warmup_queries=20)
    driver = AnalyticDriver(seed=9, use_batching=True)
    return driver.run(
        sut,
        [("steady", steady, 2.0, 30.0), ("shifted", shifted, 2.0, 30.0)],
        scenario_name="golden-analytic",
    )


def _metrics_payload(result) -> dict:
    """The pinned metric surface for one run (all JSON scalars/lists)."""
    times, counts = result.throughput_series(interval=1.0)
    bands = latency_bands(result, SLA_SECONDS, interval=1.0)
    adapt = adaptability_report(result)
    cost = cost_breakdown(result)
    return {
        "num_queries": result.num_queries,
        "mean_throughput": result.mean_throughput(),
        "throughput_series": {
            "times": times.tolist(),
            "counts": counts.tolist(),
        },
        "latency_bands": [[b.start, b.within_sla, b.violated] for b in bands],
        "adaptability": {
            "area_vs_ideal": adapt.area_vs_ideal,
            "recovery_seconds": adapt.recovery_seconds,
            "throughput_cv": adapt.throughput_cv,
        },
        "cost": {
            "training": cost.training_cost,
            "execution": cost.execution_cost,
            "per_kquery": cost.cost_per_kquery,
        },
        "training_events": [
            [e.start, e.duration, e.nominal_seconds, e.cost, e.online]
            for e in result.training_events
        ],
    }


def build_golden_payload() -> dict:
    """Run the fixed-seed KV matrix + analytic run; emit the payload."""
    outcome = MatrixRunner(workers=1).run(
        matrix_jobs(_kv_factories(), [_kv_scenario()])
    )
    outcome.raise_on_failure()
    payload = {"kv": {}, "analytic": {}}
    for record, result in zip(outcome.manifest.jobs, outcome.results):
        payload["kv"][record.label] = _metrics_payload(result)
    analytic = _analytic_result()
    payload["analytic"][analytic.sut_name] = _metrics_payload(analytic)
    return payload


def _assert_payload_equal(golden, fresh, path="$"):
    """Exact recursive equality; floats compared with ``==`` (no tolerance)."""
    assert type(golden) is type(fresh) or (
        isinstance(golden, (int, float))
        and isinstance(fresh, (int, float))
        and not isinstance(golden, bool)
        and not isinstance(fresh, bool)
    ), f"{path}: type {type(golden).__name__} != {type(fresh).__name__}"
    if isinstance(golden, dict):
        assert sorted(golden) == sorted(fresh), f"{path}: keys differ"
        for key in golden:
            _assert_payload_equal(golden[key], fresh[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert len(golden) == len(fresh), f"{path}: length differs"
        for i, (a, b) in enumerate(zip(golden, fresh)):
            _assert_payload_equal(a, b, f"{path}[{i}]")
    else:
        assert golden == fresh, f"{path}: {golden!r} != {fresh!r}"


@pytest.fixture(scope="module")
def fresh_payload():
    return build_golden_payload()


class TestGoldenRun:
    def test_matches_checked_in_golden(self, fresh_payload):
        if os.environ.get("UPDATE_GOLDENS") == "1":
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            with open(GOLDEN_PATH, "w") as handle:
                json.dump(fresh_payload, handle, indent=2, sort_keys=True)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"golden file missing; regenerate with UPDATE_GOLDENS=1 "
            f"({GOLDEN_PATH})"
        )
        with open(GOLDEN_PATH) as handle:
            golden = json.load(handle)
        _assert_payload_equal(golden, fresh_payload)

    def test_payload_json_round_trip_is_exact(self, fresh_payload):
        """JSON round-trips floats exactly, so ``==`` pinning is sound."""
        rebuilt = json.loads(json.dumps(fresh_payload))
        _assert_payload_equal(fresh_payload, rebuilt)

    def test_payload_covers_both_suts_and_analytic(self, fresh_payload):
        assert set(fresh_payload["kv"]) == {
            "learned-kv×golden-kv",
            "btree-kv×golden-kv",
        }
        assert set(fresh_payload["analytic"]) == {"learned-optimizer"}
        learned = fresh_payload["kv"]["learned-kv×golden-kv"]
        assert learned["num_queries"] > 1000
        assert learned["training_events"], "offline phase must be recorded"


class TestComparatorSensitivity:
    """The comparator must catch even a one-ULP metric drift."""

    @staticmethod
    def _perturb_first_float(node, path="$"):
        """Nudge the first nonzero float leaf by one ULP; return its path."""
        if isinstance(node, dict):
            for key in sorted(node):
                hit = TestComparatorSensitivity._perturb_first_float(
                    node[key], f"{path}.{key}"
                )
                if hit is None and isinstance(node[key], float) and node[key]:
                    node[key] = float(np.nextafter(node[key], np.inf))
                    return f"{path}.{key}"
                if hit:
                    return hit
        elif isinstance(node, list):
            for i, item in enumerate(node):
                if isinstance(item, float) and item:
                    node[i] = float(np.nextafter(item, np.inf))
                    return f"{path}[{i}]"
                hit = TestComparatorSensitivity._perturb_first_float(
                    item, f"{path}[{i}]"
                )
                if hit:
                    return hit
        return None

    def test_one_ulp_perturbation_fails(self, fresh_payload):
        mutated = copy.deepcopy(fresh_payload)
        where = self._perturb_first_float(mutated)
        assert where is not None, "payload must contain a nonzero float"
        with pytest.raises(AssertionError):
            _assert_payload_equal(fresh_payload, mutated)

    def test_dropped_band_fails(self, fresh_payload):
        mutated = copy.deepcopy(fresh_payload)
        key = next(iter(mutated["kv"]))
        assert mutated["kv"][key]["latency_bands"], "bands must be non-empty"
        mutated["kv"][key]["latency_bands"].pop()
        with pytest.raises(AssertionError):
            _assert_payload_equal(fresh_payload, mutated)

    def test_int_float_type_confusion_fails(self, fresh_payload):
        mutated = copy.deepcopy(fresh_payload)
        key = next(iter(mutated["kv"]))
        mutated["kv"][key]["num_queries"] += 1
        with pytest.raises(AssertionError):
            _assert_payload_equal(fresh_payload, mutated)
