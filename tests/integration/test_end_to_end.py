"""End-to-end shape tests: the paper's qualitative claims must hold.

These are the scientific core of the reproduction: each test runs a real
(small) benchmark scenario and asserts the *shape* the paper's figures
predict — who wins, where the dips are, what training buys.
"""

from __future__ import annotations

import numpy as np
import pytest

# Slowest lane of the suite: CI runs these separately (-m smoke).
pytestmark = pytest.mark.smoke

from repro.core.benchmark import Benchmark
from repro.metrics.adaptability import adaptability_report, area_between_systems
from repro.metrics.cost import training_cost_to_outperform
from repro.metrics.sla import adjustment_speed, calibrate_sla, latency_bands
from repro.metrics.specialization import specialization_report
from repro.scenarios import (
    abrupt_shift,
    default_dataset,
    expected_access_sample,
    specialization_ladder,
    training_budget_scenario,
)
from repro.suts.kv_learned import LearnedKVStore, StaticLearnedKVStore
from repro.suts.kv_traditional import TraditionalKVStore

# Small-but-meaningful scale: ~20k keys, tuned so the learned store's
# specialized capacity > offered rate > its mis-specialized capacity.
N_KEYS = 20_000
RATE = 3000.0
SEG = 15.0


@pytest.fixture(scope="module")
def dataset():
    return default_dataset(n=N_KEYS, seed=7)


#: Leaf budget matched to the 20k-key dataset so specialization has
#: teeth: the cold region gets few leaves, so mis-specialized lookups
#: span many storage blocks.
FANOUT = 64


@pytest.fixture(scope="module")
def shift_runs(dataset):
    scenario = abrupt_shift(dataset, rate=RATE, segment_duration=SEG,
                            train_budget=1e9)
    sample = expected_access_sample(scenario)
    bench = Benchmark()
    learned = bench.run(
        LearnedKVStore(max_fanout=FANOUT, retrain_cooldown=2.0,
                       expected_access_sample=sample),
        scenario,
    )
    static = bench.run(
        StaticLearnedKVStore(max_fanout=FANOUT, expected_access_sample=sample),
        scenario,
    )
    traditional = bench.run(TraditionalKVStore(), scenario)
    return scenario, learned, static, traditional


class TestFig1bShape:
    def test_adaptive_beats_static_after_shift(self, shift_runs):
        _, learned, static, _ = shift_runs
        assert area_between_systems(learned, static) > 0

    def test_learned_dips_then_recovers(self, shift_runs):
        """Throughput dips right after the shift, then recovers."""
        scenario, learned, _, _ = shift_runs
        change = scenario.segments[0].duration
        _, counts = learned.throughput_series(interval=1.0)
        before = counts[int(change) - 5 : int(change)].mean()
        dip = counts[int(change) : int(change) + 6].min()
        tail = counts[-6:-1].mean()  # skip the final partial bucket
        assert dip < before * 0.9  # visible dip
        assert tail > before * 0.8  # recovery

    def test_static_learned_saturates_after_shift(self, shift_runs):
        """The overfit store cannot sustain the offered load post-shift."""
        _, learned, static, _ = shift_runs
        assert static.mean_throughput() < learned.mean_throughput() * 0.8

    def test_adaptive_recovery_is_finite(self, shift_runs):
        scenario, learned, _, _ = shift_runs
        report = adaptability_report(learned)
        assert report.recovery_seconds is not None
        assert report.recovery_seconds < scenario.segments[1].duration


class TestFig1cShape:
    def test_violations_concentrate_after_change(self, shift_runs):
        scenario, learned, _, traditional = shift_runs
        # SLA from the traditional baseline's first (unstressed) segment,
        # as §V-D2 prescribes.
        sla = calibrate_sla(traditional, percentile=95.0, headroom=2.0)
        bands = latency_bands(learned, sla=sla, interval=1.0)
        change = scenario.segments[0].duration
        before = sum(b.violated for b in bands if b.start < change)
        after = sum(
            b.violated for b in bands if change <= b.start < change + 10.0
        )
        assert after > before

    def test_adjustment_speed_ranks_systems(self, shift_runs):
        scenario, learned, static, traditional = shift_runs
        sla = calibrate_sla(traditional, percentile=95.0, headroom=2.0)
        change = scenario.segments[0].duration
        n_after = int(RATE * 10)  # ten post-change seconds of arrivals
        adaptive_speed = adjustment_speed(learned, change, n_after, sla)
        static_speed = adjustment_speed(static, change, n_after, sla)
        assert adaptive_speed < static_speed


class TestFig1aShape:
    def test_static_learned_degrades_with_phi(self, dataset):
        """For the overfit store, throughput at far Φ < throughput at 0."""
        scenario, holdout = specialization_ladder(
            dataset, rate=RATE, segment_duration=10.0, train_budget=1e9
        )
        sample = expected_access_sample(scenario)
        result = Benchmark().run(
            StaticLearnedKVStore(max_fanout=FANOUT,
                                 expected_access_sample=sample),
            scenario,
        )
        report = specialization_report(
            result, scenario, holdout_labels=(holdout,)
        )
        near = report.segments[0].throughput.median
        far = report.segments[-1].throughput.median
        latency_near = report.segments[0].mean_latency
        latency_far = report.segments[-1].mean_latency
        assert far < near or latency_far > latency_near * 2


class TestFig1dShape:
    def test_throughput_grows_with_budget_and_crosses(self, dataset):
        """More training -> lower latency; crossover vs DBA steps exists."""
        from repro.metrics.cost import DBAModel

        bench = Benchmark()
        learned_curve = []
        full = LearnedKVStore().cost_model.full_retrain_seconds(len(dataset))
        latencies = {}
        for fraction in (0.02, 0.3, 1.0):
            budget = full * fraction
            scenario = training_budget_scenario(
                dataset, budget_seconds=budget, rate=1500.0, duration=10.0
            )
            result = bench.run(LearnedKVStore(), scenario)
            cost = result.total_training_cost()
            learned_curve.append((cost, result.mean_throughput()))
            latencies[fraction] = float(np.mean(result.latencies()))
        assert latencies[1.0] < latencies[0.02]

        dba = DBAModel()
        traditional_levels = []
        for level in range(dba.levels):
            scenario = training_budget_scenario(
                dataset, budget_seconds=0.0, rate=1500.0, duration=10.0
            )
            result = bench.run(TraditionalKVStore(tuning_level=level), scenario)
            traditional_levels.append(
                (dba.cost_of_level(level), result.mean_throughput())
            )
        crossover = training_cost_to_outperform(learned_curve, traditional_levels)
        # Training costs cents; DBA hours cost hundreds of dollars — the
        # learned system must win at a tiny training cost.
        assert crossover is not None
        assert crossover < 1.0
