"""Additional end-to-end shapes: concurrency scaling and chained YCSB."""

from __future__ import annotations

import numpy as np
import pytest

# Slowest lane of the suite: CI runs these separately (-m smoke).
pytestmark = pytest.mark.smoke

from repro.core.benchmark import Benchmark, BenchmarkConfig
from repro.core.phases import TrainingPhase
from repro.core.scenario import Scenario, Segment
from repro.scenarios import default_dataset, hotspot
from repro.suts.kv_learned import StaticLearnedKVStore
from repro.suts.kv_traditional import HashKVStore, TraditionalKVStore
from repro.workloads.generators import simple_spec
from repro.workloads.ycsb import ycsb_workload


@pytest.fixture(scope="module")
def dataset():
    return default_dataset(n=10_000, seed=3)


class TestConcurrencyScaling:
    """More servers raise sustainable throughput for the same SUT."""

    def _scenario(self, dataset, rate):
        return Scenario(
            name="load",
            segments=[
                Segment(
                    spec=simple_spec("w", hotspot(dataset, 0.1), rate=rate,
                                     read_fraction=1.0),
                    duration=10.0,
                )
            ],
            initial_keys=dataset.keys,
            seed=9,
        )

    def test_btree_saturation_lifts_with_servers(self, dataset):
        # Offered rate ~2x a single btree worker's capacity.
        rate = 5000.0
        scenario = self._scenario(dataset, rate)
        single = Benchmark(BenchmarkConfig(servers=1)).run(
            TraditionalKVStore(), scenario
        )
        quad = Benchmark(BenchmarkConfig(servers=4)).run(
            TraditionalKVStore(), scenario
        )
        horizon = scenario.total_duration
        eff_single = (single.completions() <= horizon).sum() / horizon
        eff_quad = (quad.completions() <= horizon).sum() / horizon
        assert eff_single < 0.8 * rate  # saturated alone
        assert eff_quad > 0.95 * rate  # keeps up with 4 slots
        assert np.percentile(quad.latencies(), 99) < np.percentile(
            single.latencies(), 99
        )


class TestChainedYCSB:
    """YCSB C→A→E in one run: the structural-mismatch story, asserted."""

    @pytest.fixture(scope="class")
    def results(self, dataset):
        segments = [
            Segment(
                spec=ycsb_workload(letter, low=dataset.low, high=dataset.high,
                                   rate=300.0),
                duration=8.0,
            )
            for letter in ("C", "A", "E")
        ]
        scenario = Scenario(
            name="ycsb-chain",
            segments=segments,
            initial_training=TrainingPhase(budget_seconds=1e9),
            initial_keys=dataset.keys,
            seed=21,
        )
        bench = Benchmark()
        return {
            sut.name: bench.run(sut, scenario)
            for sut in (TraditionalKVStore(), HashKVStore())
        }

    def test_hash_wins_point_phase(self, results):
        hash_c = np.median(
            [q.latency for q in results["hash-kv"].queries_in_segment("ycsb-c")]
        )
        btree_c = np.median(
            [q.latency for q in results["btree-kv"].queries_in_segment("ycsb-c")]
        )
        assert hash_c < btree_c

    def test_hash_collapses_on_scans(self, results):
        hash_e = np.median(
            [q.latency for q in results["hash-kv"].queries_in_segment("ycsb-e")]
        )
        btree_e = np.median(
            [q.latency for q in results["btree-kv"].queries_in_segment("ycsb-e")]
        )
        assert hash_e > 10 * btree_e

    def test_single_run_covers_all_phases(self, results):
        for result in results.values():
            assert {q.segment for q in result.queries} == {
                "ycsb-c", "ycsb-a", "ycsb-e",
            }


class TestHoldoutCatchesOverfit:
    """The Lesson-1 mechanism end to end at small scale."""

    def test_out_of_sample_worse_than_in_sample(self, dataset):
        from repro.core.service import BenchmarkService
        from repro.scenarios import expected_access_sample

        def scenario(position, name):
            return Scenario(
                name=name,
                segments=[
                    Segment(
                        spec=simple_spec(name, hotspot(dataset, position),
                                         rate=1500.0, read_fraction=1.0),
                        duration=8.0,
                    )
                ],
                initial_training=TrainingPhase(budget_seconds=1e9),
                initial_keys=dataset.keys,
                seed=5,
            )

        published = scenario(0.1, "published")
        sample = expected_access_sample(published)

        def factory():
            return StaticLearnedKVStore(max_fanout=48,
                                        expected_access_sample=sample)

        in_sample = Benchmark().run(factory(), published)
        service = BenchmarkService()
        service.publish_holdout(scenario(0.9, "sealed"))
        (report,) = service.submit(factory)
        in_p99 = float(np.percentile(in_sample.latencies(), 99))
        assert report.p99_latency > in_p99 * 2
