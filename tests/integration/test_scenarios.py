"""Scenario builders."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    abrupt_shift,
    bursty_diurnal,
    default_dataset,
    gradual_shift,
    hotspot,
    specialization_ladder,
    training_budget_scenario,
)


@pytest.fixture(scope="module")
def dataset():
    return default_dataset(n=3000, seed=2)


class TestBuilders:
    def test_ladder_structure(self, dataset):
        scenario, holdout = specialization_ladder(dataset, rate=10, segment_duration=2)
        assert scenario.segments[-1].label == holdout
        assert len(scenario.segments) == 6
        assert scenario.initial_keys is dataset.keys

    def test_abrupt_shift_two_segments(self, dataset):
        scenario = abrupt_shift(dataset, rate=10, segment_duration=2)
        assert [s.label for s in scenario.segments] == ["dist-A", "dist-B"]

    def test_gradual_shift_single_segment(self, dataset):
        scenario = gradual_shift(dataset, rate=10, total_duration=10)
        assert len(scenario.segments) == 1
        drift = scenario.segments[0].spec.key_drift
        early = drift.at(0.0)
        late = drift.at(10.0)
        assert early is not late

    def test_budget_scenario_names_budget(self, dataset):
        scenario = training_budget_scenario(dataset, budget_seconds=2.5, rate=10,
                                            duration=2)
        assert "2.5" in scenario.name
        assert scenario.initial_training.budget_seconds == 2.5

    def test_bursty_has_bursts(self, dataset):
        scenario = bursty_diurnal(dataset, base_rate=10, duration=20)
        arrivals = scenario.segments[0].spec.arrivals
        base = arrivals.rate(1.0)
        burst = arrivals.rate(20 * 0.3 + 0.1)
        assert burst > base * 2

    def test_hotspot_position(self, dataset):
        dist = hotspot(dataset, 0.5, width=0.1)
        span = dataset.high - dataset.low
        assert dist.hot_start == pytest.approx(dataset.low + 0.5 * span)

    def test_fingerprints_differ_across_builders(self, dataset):
        a = abrupt_shift(dataset, rate=10, segment_duration=2)
        b = gradual_shift(dataset, rate=10, total_duration=4)
        assert a.fingerprint() != b.fingerprint()
