"""Golden regression for the drift-factor Φ sweep.

A fixed-seed factor sweep over the canonical ``drift_axis`` scenario
family produces, per factor, the analytic Φ (sup-CDF + op-mix distance,
deterministic arithmetic) and the realized Φ (KS over a regenerated
query stream, seeded) between the drifted segment and both endpoints.
The payload is pinned *exactly* — floats compared with ``==`` — against
a checked-in golden JSON, so any change to the blend arithmetic, the
RNG consumption order in :meth:`KVWorkload.next_batch`, or the Φ
estimators fails loudly.

Regenerate after an *intentional* behavior change with::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/integration/test_golden_drift_phi.py
"""

from __future__ import annotations

import copy
import json
import math
import os
from pathlib import Path

import pytest

from repro.data.datasets import build_dataset
from repro.metrics.similarity import expected_spec_phi, realized_spec_phi
from repro.scenarios import drift_axis, drift_axis_specs
from repro.workloads.generators import blend_specs

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_drift_phi.json"

#: The pinned sweep grid — matches the run-matrix smoke lane.
FACTORS = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Probe-stream size for the realized estimator (small but stable).
PROBE_N = 1024
PROBE_SEED = 11


def build_golden_payload() -> dict:
    """Compute the pinned Φ table for the fixed-seed factor sweep."""
    dataset = build_dataset("uniform", n=2000, seed=3)
    base, target = drift_axis_specs(dataset, rate=200.0)
    rows = []
    for factor in FACTORS:
        blended = blend_specs(base, target, factor)
        scenario = drift_axis(
            dataset, factor=factor, rate=200.0, segment_duration=2.0
        )
        rows.append(
            {
                "factor": factor,
                "scenario": scenario.name,
                "fingerprint": scenario.fingerprint(),
                "expected_vs_target": expected_spec_phi(blended, target),
                "realized_vs_base": realized_spec_phi(
                    base, blended, n=PROBE_N, seed=PROBE_SEED
                ),
                "realized_vs_target": realized_spec_phi(
                    blended, target, n=PROBE_N, seed=PROBE_SEED
                ),
            }
        )
    return {"factors": list(FACTORS), "sweep": rows}


def _assert_payload_equal(golden, fresh, path="$"):
    """Exact recursive equality; floats compared with ``==`` (no tolerance).

    Duplicated from ``test_golden_run`` — ``tests/integration`` has no
    package ``__init__``, so test modules cannot import each other.
    """
    assert type(golden) is type(fresh) or (
        isinstance(golden, (int, float))
        and isinstance(fresh, (int, float))
        and not isinstance(golden, bool)
        and not isinstance(fresh, bool)
    ), f"{path}: type {type(golden).__name__} != {type(fresh).__name__}"
    if isinstance(golden, dict):
        assert sorted(golden) == sorted(fresh), f"{path}: keys differ"
        for key in golden:
            _assert_payload_equal(golden[key], fresh[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert len(golden) == len(fresh), f"{path}: length differs"
        for i, (a, b) in enumerate(zip(golden, fresh)):
            _assert_payload_equal(a, b, f"{path}[{i}]")
    else:
        assert golden == fresh, f"{path}: {golden!r} != {fresh!r}"


@pytest.fixture(scope="module")
def fresh_payload():
    return build_golden_payload()


class TestGoldenDriftPhi:
    def test_matches_checked_in_golden(self, fresh_payload):
        if os.environ.get("UPDATE_GOLDENS") == "1":
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            with open(GOLDEN_PATH, "w") as handle:
                json.dump(fresh_payload, handle, indent=2, sort_keys=True)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"golden file missing; regenerate with UPDATE_GOLDENS=1 "
            f"({GOLDEN_PATH})"
        )
        with open(GOLDEN_PATH) as handle:
            golden = json.load(handle)
        _assert_payload_equal(golden, fresh_payload)

    def test_payload_json_round_trip_is_exact(self, fresh_payload):
        rebuilt = json.loads(json.dumps(fresh_payload))
        _assert_payload_equal(fresh_payload, rebuilt)

    def test_sweep_shape_and_invariants(self, fresh_payload):
        rows = fresh_payload["sweep"]
        assert [row["factor"] for row in rows] == list(FACTORS)
        # Φ to the target shrinks, Φ from the base grows, endpoints pin
        # to exactly zero (the blend *is* the endpoint spec there).
        to_target = [row["realized_vs_target"]["phi"] for row in rows]
        from_base = [row["realized_vs_base"]["phi"] for row in rows]
        assert to_target[-1] == 0.0
        assert from_base[0] == 0.0
        assert all(b <= a + 0.02 for a, b in zip(to_target, to_target[1:]))
        assert all(b >= a - 0.02 for a, b in zip(from_base, from_base[1:]))
        # Fingerprints are distinct per factor — the axis enters the
        # cache key.
        fingerprints = {row["fingerprint"] for row in rows}
        assert len(fingerprints) == len(FACTORS)


class TestComparatorSensitivity:
    """The exact comparator catches the smallest representable changes."""

    def test_one_ulp_perturbation_fails(self, fresh_payload):
        mutated = copy.deepcopy(fresh_payload)
        cell = mutated["sweep"][2]["expected_vs_target"]
        cell["phi"] = math.nextafter(cell["phi"], math.inf)
        with pytest.raises(AssertionError):
            _assert_payload_equal(fresh_payload, mutated)

    def test_dropped_row_fails(self, fresh_payload):
        mutated = copy.deepcopy(fresh_payload)
        mutated["sweep"].pop()
        with pytest.raises(AssertionError):
            _assert_payload_equal(fresh_payload, mutated)

    def test_fingerprint_change_fails(self, fresh_payload):
        mutated = copy.deepcopy(fresh_payload)
        mutated["sweep"][0]["fingerprint"] = "0" * 16
        with pytest.raises(AssertionError):
            _assert_payload_equal(fresh_payload, mutated)
