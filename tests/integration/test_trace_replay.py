"""Trace replay end-to-end: bit-identity, cache keys, golden round trip.

The replay contract is that a recorded trace flows through every driver
path — scalar, batched, streaming — and produces the *same* executed
columns: arrivals equal to the recorded timestamps, op codes and keys
equal to the recorded rows. On top sits the round-trip closer: fit a
synthetic generator to the fixture trace and pin its divergence report
(KS over keys, TV over ops, arrival-rate error) against a checked-in
golden JSON, exact-float comparison.

Regenerate the golden after an *intentional* change with::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_trace_replay.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.runner import job_cache_key, matrix_jobs
from repro.core.scenario import Scenario
from repro.core.streaming import load_spilled_columns
from repro.errors import ConfigurationError
from repro.serialization import spec_from_dict
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.generators import KV_OPERATIONS
from repro.workloads.trace import (
    QueryTrace,
    load_trace,
    round_trip,
    trace_spec,
)

FIXTURE = Path(__file__).parent.parent / "fixtures" / "trace_small.csv"
GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_round_trip.json"

COLUMNS = ("arrivals", "starts", "completions", "op_codes", "segment_codes")


@pytest.fixture(scope="module")
def fixture_trace() -> QueryTrace:
    return load_trace(FIXTURE)


@pytest.fixture(scope="module")
def replay_scenario(fixture_trace) -> Scenario:
    return Scenario.from_trace(
        fixture_trace, initial_keys=np.unique(fixture_trace.keys)
    )


def _assert_payload_equal(golden, fresh, path="$"):
    """Exact recursive equality; floats compared with ``==`` (no tolerance)."""
    assert type(golden) is type(fresh) or (
        isinstance(golden, (int, float))
        and isinstance(fresh, (int, float))
        and not isinstance(golden, bool)
        and not isinstance(fresh, bool)
    ), f"{path}: type {type(golden).__name__} != {type(fresh).__name__}"
    if isinstance(golden, dict):
        assert sorted(golden) == sorted(fresh), f"{path}: keys differ"
        for key in golden:
            _assert_payload_equal(golden[key], fresh[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert len(golden) == len(fresh), f"{path}: length differs"
        for i, (a, b) in enumerate(zip(golden, fresh)):
            _assert_payload_equal(a, b, f"{path}[{i}]")
    else:
        assert golden == fresh, f"{path}: {golden!r} != {fresh!r}"


class TestFixture:
    def test_fixture_loads(self, fixture_trace):
        assert fixture_trace.n == 640
        assert fixture_trace.name == "trace_small"
        assert sum(fixture_trace.op_histogram().values()) == 640

    def test_fixture_content_hash_is_pinned(self, fixture_trace):
        # Editing the checked-in fixture invalidates the golden report and
        # every cached replay cell; this test makes that loud.
        assert fixture_trace.content_hash().startswith("ea236e8a1ec0009c")


class TestThreePathBitIdentity:
    """Scalar, batched, and streaming replay execute identical columns."""

    @pytest.fixture(scope="class")
    def scalar(self, replay_scenario):
        return VirtualClockDriver(DriverConfig(use_batching=False)).run(
            TraditionalKVStore(), replay_scenario
        )

    def test_arrivals_are_the_recorded_timestamps(self, scalar, fixture_trace):
        assert np.array_equal(
            scalar.columns.arrivals, fixture_trace.rebased().timestamps
        )
        # The recorder interns op names by first appearance, so compare
        # through the vocab rather than against raw trace codes.
        executed_ops = [
            scalar.columns.op_vocab[i] for i in scalar.columns.op_codes
        ]
        recorded_ops = [
            KV_OPERATIONS[int(c)].value for c in fixture_trace.ops
        ]
        assert executed_ops == recorded_ops

    def test_batched_matches_scalar(self, scalar, replay_scenario):
        batched = VirtualClockDriver(DriverConfig(use_batching=True)).run(
            TraditionalKVStore(), replay_scenario
        )
        for name in COLUMNS:
            assert np.array_equal(
                getattr(scalar.columns, name), getattr(batched.columns, name)
            ), f"column {name!r} diverged between scalar and batched"

    @pytest.mark.parametrize("block_size", [64, 257])
    def test_streaming_matches_scalar(
        self, scalar, replay_scenario, tmp_path, block_size
    ):
        driver = VirtualClockDriver(DriverConfig(block_size=block_size))
        driver.run_streaming(
            TraditionalKVStore(), replay_scenario,
            spill_dir=str(tmp_path / "spill"),
        )
        spilled = load_spilled_columns(str(tmp_path / "spill"))
        for name in ("arrivals", "starts", "completions", "op_codes"):
            assert np.array_equal(
                getattr(scalar.columns, name), getattr(spilled, name)
            ), f"column {name!r} diverged in streaming (block={block_size})"

    def test_replay_is_seed_independent(self, scalar, fixture_trace):
        other = VirtualClockDriver(DriverConfig(use_batching=False)).run(
            TraditionalKVStore(),
            Scenario.from_trace(
                fixture_trace,
                initial_keys=np.unique(fixture_trace.keys),
                seed=12345,
            ),
        )
        assert np.array_equal(scalar.columns.arrivals, other.columns.arrivals)
        assert np.array_equal(scalar.columns.op_codes, other.columns.op_codes)


class TestFingerprintsAndCacheKeys:
    def test_fingerprint_tracks_trace_content(self, fixture_trace):
        base = Scenario.from_trace(fixture_trace).fingerprint()
        perturbed_trace = QueryTrace(
            fixture_trace.timestamps,
            fixture_trace.ops,
            fixture_trace.keys + 1e-9,
            fixture_trace.scan_lengths,
        )
        assert Scenario.from_trace(perturbed_trace).fingerprint() != base

    def test_fingerprint_tracks_dilation_and_truncation(self, fixture_trace):
        base = Scenario.from_trace(fixture_trace).fingerprint()
        dilated = Scenario.from_trace(fixture_trace, dilation=2.0).fingerprint()
        cut = Scenario.from_trace(fixture_trace, max_queries=100).fingerprint()
        assert len({base, dilated, cut}) == 3

    def test_cache_key_tracks_trace_content(self, fixture_trace):
        perturbed_trace = QueryTrace(
            fixture_trace.timestamps,
            fixture_trace.ops,
            fixture_trace.keys + 1e-9,
            fixture_trace.scan_lengths,
        )
        desc = TraditionalKVStore().describe()
        keys = set()
        for trace in (fixture_trace, perturbed_trace):
            jobs = matrix_jobs(
                {"btree-kv": TraditionalKVStore},
                [Scenario.from_trace(trace)],
            )
            keys.add(job_cache_key(jobs[0], DriverConfig(), desc))
        assert len(keys) == 2

    def test_scenario_shape(self, fixture_trace, replay_scenario):
        assert replay_scenario.name == "replay:trace_small"
        assert len(replay_scenario.segments) == 1
        segment = replay_scenario.segments[0]
        assert segment.label == "replay"
        assert segment.duration > fixture_trace.rebased().span
        # from_trace rebases first, so the embedded hash is the rebased
        # trace's (two traces that rebase identically replay identically).
        assert (
            segment.spec.describe()["trace"]["content_hash"]
            == fixture_trace.rebased().content_hash()
        )

    def test_from_trace_truncation(self, fixture_trace):
        scenario = Scenario.from_trace(fixture_trace, max_queries=50)
        assert scenario.segments[0].spec.trace.n == 50


class TestSerializationBoundary:
    def test_trace_specs_refuse_json_round_trip(self, fixture_trace):
        payload = trace_spec(fixture_trace.rebased()).describe()
        with pytest.raises(ConfigurationError, match="load_trace"):
            spec_from_dict(payload)

    def test_fitted_spec_round_trips(self, fixture_trace):
        # Unlike replay specs, the *fitted* spec is fully parametric and
        # survives the JSON boundary (mix renormalization may drift the
        # proportions by an ULP, so compare approximately).
        spec, _, _ = round_trip(fixture_trace)
        rebuilt = spec_from_dict(spec.describe())
        assert rebuilt.name == spec.name
        assert rebuilt.scan_length_mean == spec.scan_length_mean
        rebuilt_mix = rebuilt.mix.proportions()
        for op, share in spec.mix.proportions().items():
            assert rebuilt_mix[op] == pytest.approx(share)


class TestGoldenRoundTrip:
    """The fixture's round-trip divergence report is pinned exactly."""

    @pytest.fixture(scope="class")
    def fresh_report(self, fixture_trace):
        _, synthesis, report = round_trip(fixture_trace, seed=0)
        return {
            "trace": {
                "content_hash": fixture_trace.content_hash(),
                "n": fixture_trace.n,
            },
            "synthesis_ks": synthesis.ks_distance,
            "report": report.to_dict(),
        }

    def test_matches_checked_in_golden(self, fresh_report):
        if os.environ.get("UPDATE_GOLDENS") == "1":
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            with open(GOLDEN_PATH, "w") as handle:
                json.dump(fresh_report, handle, indent=2, sort_keys=True)
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"golden file missing; regenerate with UPDATE_GOLDENS=1 "
            f"({GOLDEN_PATH})"
        )
        with open(GOLDEN_PATH) as handle:
            golden = json.load(handle)
        _assert_payload_equal(golden, fresh_report)

    def test_report_meets_documented_fidelity(self, fresh_report):
        # The tutorial quotes these bounds for the fixture; keep them true.
        report = fresh_report["report"]
        assert report["ks_keys"] < 0.1
        assert report["tv_ops"] < 0.1
        assert report["arrival_rate_error"] < 0.05

    def test_json_round_trip_is_exact(self, fresh_report):
        _assert_payload_equal(
            fresh_report, json.loads(json.dumps(fresh_report))
        )
