"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import build_dataset
from repro.engine.catalog import Catalog
from repro.engine.schema import ColumnType, Schema
from repro.engine.table import Table


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_pairs(rng):
    """~1000 unique (key, value) pairs over a lumpy distribution."""
    keys = np.unique(
        np.concatenate(
            [
                rng.uniform(0, 1000, 400),
                rng.normal(5000, 50, 400),
                rng.uniform(9000, 10000, 400),
            ]
        )
    )
    return [(float(k), i) for i, k in enumerate(keys)]


@pytest.fixture
def tiny_dataset():
    """A small 'osm'-shaped dataset for driver tests."""
    return build_dataset("osm", n=5000, seed=3)


@pytest.fixture
def orders_catalog(rng) -> Catalog:
    """orders/customers catalog with 2000/200 rows."""
    n_orders, n_customers = 2000, 200
    orders = Table.from_columns(
        "orders",
        Schema.of(
            ("oid", ColumnType.INT),
            ("cid", ColumnType.INT),
            ("amount", ColumnType.FLOAT),
        ),
        {
            "oid": np.arange(n_orders),
            "cid": rng.integers(0, n_customers, n_orders),
            "amount": rng.exponential(100.0, n_orders),
        },
    )
    customers = Table.from_columns(
        "customers",
        Schema.of(("cid", ColumnType.INT), ("region", ColumnType.INT)),
        {
            "cid": np.arange(n_customers),
            "region": rng.integers(0, 10, n_customers),
        },
    )
    catalog = Catalog()
    catalog.register(orders)
    catalog.register(customers)
    return catalog
