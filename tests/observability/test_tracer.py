"""Unit tests for the observability layer: spans, traces, counters."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.observability import (
    NULL_TRACER,
    PHASES,
    CounterRegistry,
    NullTracer,
    Span,
    Trace,
    Tracer,
)


class FakeClock:
    """Scripted clock: returns queued readings, then keeps the last."""

    def __init__(self, readings):
        self.readings = list(readings)
        self.last = self.readings[0] if self.readings else 0.0

    def __call__(self) -> float:
        if self.readings:
            self.last = self.readings.pop(0)
        return self.last


class TestTracerSpans:
    def test_span_records_duration(self):
        tracer = Tracer(clock=FakeClock([1.0, 3.5]))
        with tracer.span("work", phase="serve"):
            pass
        trace = tracer.finish()
        (span,) = trace.spans
        assert span.name == "work"
        assert span.phase == "serve"
        assert span.duration == pytest.approx(2.5)

    def test_nested_spans_become_children(self):
        tracer = Tracer(clock=FakeClock([0.0, 1.0, 2.0, 3.0]))
        with tracer.span("outer", phase="serve"):
            with tracer.span("inner", phase="train"):
                pass
        trace = tracer.finish()
        (outer,) = trace.spans
        assert [c.name for c in outer.children] == ["inner"]
        inner = outer.children[0]
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_unknown_phase_rejected(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.start_span("x", phase="warmup")

    def test_end_span_on_empty_stack_returns_none(self):
        assert Tracer().end_span() is None

    def test_span_attrs_captured(self):
        tracer = Tracer()
        with tracer.span("seg", phase="serve", index=3, label="ramp"):
            pass
        (span,) = tracer.finish().spans
        assert span.attrs == {"index": 3, "label": "ramp"}

    def test_finish_closes_open_spans(self):
        tracer = Tracer(clock=FakeClock([0.0, 1.0]))
        tracer.start_span("dangling", phase="serve")
        assert tracer.open_spans == 1
        trace = tracer.finish()
        assert tracer.open_spans == 0
        (span,) = trace.spans
        assert span.end >= span.start

    def test_adversarial_clock_clamped(self):
        # A clock that goes backwards cannot produce a negative duration.
        tracer = Tracer(clock=FakeClock([10.0, 4.0]))
        with tracer.span("work", phase="serve"):
            pass
        (span,) = tracer.finish().spans
        assert span.duration == 0.0


class TestPhaseAccounting:
    def test_self_time_excludes_children(self):
        tracer = Tracer(clock=FakeClock([0.0, 2.0, 7.0, 10.0]))
        with tracer.span("segment", phase="serve"):
            with tracer.span("retrain", phase="train"):
                pass
        trace = tracer.finish()
        phases = trace.phase_seconds()
        # serve = 10 - (7 - 2) = 5; train = 5; no double counting.
        assert phases["serve"] == pytest.approx(5.0)
        assert phases["train"] == pytest.approx(5.0)
        assert sum(phases.values()) == pytest.approx(10.0)

    def test_all_phases_always_present(self):
        phases = Trace().phase_seconds()
        assert set(phases) == set(PHASES)
        assert all(v == 0.0 for v in phases.values())


class TestTraceRoundTrip:
    def _sample_trace(self) -> Trace:
        tracer = Tracer(clock=FakeClock([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]))
        with tracer.span("segment:a", phase="serve", index=0):
            with tracer.span("retrain", phase="adapt", fanout=8):
                pass
        with tracer.span("report", phase="report"):
            pass
        tracer.counter("queries", 128)
        tracer.counter("retrains")
        return tracer.finish()

    def test_json_round_trip_exact(self):
        trace = self._sample_trace()
        payload = json.loads(json.dumps(trace.to_dict()))
        clone = Trace.from_dict(payload)
        assert clone.to_dict() == trace.to_dict()
        assert clone.phase_seconds() == trace.phase_seconds()
        assert clone.counters == trace.counters

    def test_to_dict_carries_derived_phase_seconds(self):
        trace = self._sample_trace()
        assert trace.to_dict()["phase_seconds"] == trace.phase_seconds()

    def test_walk_visits_every_span(self):
        trace = self._sample_trace()
        names = [s.name for s in trace.walk()]
        assert names == ["segment:a", "retrain", "report"]

    def test_merge_concatenates_and_sums(self):
        a = Trace(spans=[Span("x", "serve", 0.0, 1.0)], counters={"n": 2})
        b = Trace(spans=[Span("y", "train", 0.0, 3.0)], counters={"n": 1, "m": 5})
        merged = a.merge(b)
        assert [s.name for s in merged.spans] == ["x", "y"]
        assert merged.counters == {"n": 3, "m": 5}
        assert merged.phase_seconds()["train"] == pytest.approx(3.0)


class TestCounters:
    def test_tracer_counters(self):
        tracer = Tracer()
        tracer.counter("a")
        tracer.counter("a", 4)
        tracer.counter("b", 0.5)
        assert tracer.counters == {"a": 5, "b": 0.5}

    def test_negative_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer().counter("a", -1)
        with pytest.raises(ConfigurationError):
            CounterRegistry().increment("a", -0.5)

    def test_registry_merge(self):
        left = CounterRegistry()
        left.increment("x", 2)
        right = CounterRegistry()
        right.increment("x", 3)
        right.increment("y")
        merged = left.merge(right)
        assert merged.as_dict() == {"x": 5, "y": 1}
        # merge is non-destructive
        assert left.as_dict() == {"x": 2}
        assert right.as_dict() == {"x": 3, "y": 1}


class TestNullTracer:
    def test_is_default_and_shared(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.enabled is False

    def test_all_operations_are_noops(self):
        tracer = NullTracer()
        assert tracer.start_span("x", phase="serve") is None
        assert tracer.end_span() is None
        with tracer.span("x", phase="serve") as span:
            assert span is None
        tracer.counter("a", 100)
        assert tracer.counters == {}
        trace = tracer.finish()
        assert trace.spans == [] and trace.counters == {}

    def test_span_context_is_singleton(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b", phase="train")

    def test_has_no_instance_dict(self):
        with pytest.raises(AttributeError):
            NullTracer().extra = 1  # __slots__ keeps it allocation-free
