"""Property tests for the tracer (hypothesis).

Three invariants the rest of the stack leans on:

* span durations are never negative, whatever the clock does and however
  opens and closes interleave (the monotonic clamp);
* a child span's [start, end] always nests inside its parent's;
* counter merging is associative (matrix workers can be folded in any
  grouping and produce the same fleet totals).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.observability import CounterRegistry, Trace, Tracer

# Clock readings: any finite floats, including decreasing sequences.
clocks = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=40,
)

# An interleaving program: True = open a span, False = close one.
programs = st.lists(st.booleans(), min_size=1, max_size=40)


class ReplayClock:
    """Replays scripted readings, then repeats the final one."""

    def __init__(self, readings):
        self._readings = list(readings)
        self._i = 0

    def __call__(self) -> float:
        value = self._readings[min(self._i, len(self._readings) - 1)]
        self._i += 1
        return value


def _run_program(program, readings) -> Trace:
    tracer = Tracer(clock=ReplayClock(readings))
    phases = ("train", "adapt", "serve", "report")
    for step, do_open in enumerate(program):
        if do_open:
            tracer.start_span(f"s{step}", phase=phases[step % 4])
        else:
            tracer.end_span()  # may be a no-op on an empty stack
    return tracer.finish()


@given(program=programs, readings=clocks)
def test_no_negative_durations(program, readings):
    trace = _run_program(program, readings)
    for span in trace.walk():
        assert span.duration >= 0.0
        assert span.self_seconds >= 0.0


@given(program=programs, readings=clocks)
def test_children_nest_within_parents(program, readings):
    trace = _run_program(program, readings)
    for span in trace.walk():
        for child in span.children:
            assert span.start <= child.start
            assert child.end <= span.end


@given(program=programs, readings=clocks)
def test_phase_seconds_bounded_by_total_duration(program, readings):
    # Self-time attribution partitions each root span's duration, so the
    # phase totals can never exceed the sum of root durations.
    trace = _run_program(program, readings)
    total_roots = sum(s.duration for s in trace.spans)
    assert sum(trace.phase_seconds().values()) <= total_roots + 1e-9


# Integer deltas: event tallies are counts, and exact integer addition is
# what makes the associativity below hold bit-for-bit.
counter_maps = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=0, max_value=10**12),
    max_size=4,
)


@given(a=counter_maps, b=counter_maps, c=counter_maps)
def test_counter_merge_associative(a, b, c):
    ra, rb, rc = CounterRegistry(a), CounterRegistry(b), CounterRegistry(c)
    left = ra.merge(rb).merge(rc).as_dict()
    right = ra.merge(rb.merge(rc)).as_dict()
    assert left == right


@given(a=counter_maps, b=counter_maps)
def test_counter_merge_commutative_keys(a, b):
    ra, rb = CounterRegistry(a), CounterRegistry(b)
    ab = ra.merge(rb).as_dict()
    ba = rb.merge(ra).as_dict()
    assert ab == ba


@given(a=counter_maps, b=counter_maps, c=counter_maps)
def test_trace_merge_associative_counters(a, b, c):
    ta, tb, tc = Trace(counters=a), Trace(counters=b), Trace(counters=c)
    left = ta.merge(tb).merge(tc)
    right = ta.merge(tb.merge(tc))
    assert left.counters == right.counters
