"""Docs-site validity checks runnable without mkdocs installed.

CI's docs lane runs ``mkdocs build --strict``, which fails on nav
entries pointing at missing files and on broken intra-docs links. These
tests pin the same properties with stdlib + pyyaml so a broken docs
change fails in the fast lane too, and run the docstring-coverage gate
(``tools/check_docstrings.py``) the docs lane enforces.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

import pytest
import yaml

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")
MKDOCS_YML = os.path.join(REPO_ROOT, "mkdocs.yml")

#: Markdown inline links: [text](target). Images and autolinks excluded.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def _nav_files(nav) -> list:
    """Flatten mkdocs nav (list of {title: target-or-sublist}) to paths."""
    files = []
    for entry in nav:
        if isinstance(entry, str):
            files.append(entry)
            continue
        for _title, target in entry.items():
            if isinstance(target, list):
                files.extend(_nav_files(target))
            else:
                files.append(target)
    return files


@pytest.fixture(scope="module")
def config():
    with open(MKDOCS_YML) as handle:
        return yaml.safe_load(handle)


class TestMkdocsConfig:
    def test_strict_mode_is_on(self, config):
        assert config["strict"] is True

    def test_theme_is_bundled(self, config):
        # The docs CI lane installs only `mkdocs`; any non-bundled theme
        # would break `mkdocs build` there.
        assert config["theme"]["name"] in ("mkdocs", "readthedocs")

    def test_every_nav_entry_exists(self, config):
        for target in _nav_files(config["nav"]):
            assert os.path.isfile(os.path.join(DOCS_DIR, target)), (
                f"mkdocs.yml nav references docs/{target}, which does "
                "not exist (mkdocs build --strict would fail)"
            )

    def test_every_docs_page_is_in_nav(self, config):
        in_nav = set(_nav_files(config["nav"]))
        on_disk = {
            name for name in os.listdir(DOCS_DIR) if name.endswith(".md")
        }
        assert on_disk == in_nav, (
            "docs/ pages and mkdocs.yml nav disagree "
            f"(only on disk: {sorted(on_disk - in_nav)}, "
            f"only in nav: {sorted(in_nav - on_disk)})"
        )


class TestDocsLinks:
    def test_intra_docs_links_resolve(self, config):
        """Every relative .md link in a docs page targets a real page."""
        broken = []
        for page in _nav_files(config["nav"]):
            path = os.path.join(DOCS_DIR, page)
            with open(path) as handle:
                text = handle.read()
            for target in _LINK_RE.findall(text):
                if target.startswith(("http://", "https://", "#", "mailto:")):
                    continue
                target_file = target.split("#", 1)[0]
                if not target_file.endswith(".md"):
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), target_file)
                )
                if not os.path.isfile(resolved):
                    broken.append(f"{page} -> {target}")
        assert not broken, f"broken intra-docs links: {broken}"

    def test_tutorial_cross_links_example(self):
        """The chaos tutorial and its runnable example reference each other."""
        with open(os.path.join(DOCS_DIR, "chaos-tutorial.md")) as handle:
            tutorial = handle.read()
        assert "examples/chaos_recovery.py" in tutorial
        example = os.path.join(REPO_ROOT, "examples", "chaos_recovery.py")
        with open(example) as handle:
            assert "chaos-tutorial.md" in handle.read()

    def test_trace_replay_page_cross_links(self):
        """The trace-replay page, example, and fixture stay in sync."""
        with open(os.path.join(DOCS_DIR, "trace-replay.md")) as handle:
            page = handle.read()
        assert "examples/trace_round_trip.py" in page
        assert "tests/fixtures/trace_small.csv" in page
        assert "benchmarks/bench_trace_replay.py" in page
        example = os.path.join(REPO_ROOT, "examples", "trace_round_trip.py")
        with open(example) as handle:
            assert "trace-replay.md" in handle.read()
        fixture = os.path.join(
            REPO_ROOT, "tests", "fixtures", "trace_small.csv"
        )
        with open(fixture) as handle:
            assert handle.readline().strip() == "# repro-trace v1"


class TestDocstringGate:
    def test_gated_packages_fully_documented(self):
        """The gate CI enforces passes: 100% public-symbol coverage."""
        proc = subprocess.run(
            [
                sys.executable,
                os.path.join(REPO_ROOT, "tools", "check_docstrings.py"),
                os.path.join(REPO_ROOT, "src", "repro", "core"),
                os.path.join(REPO_ROOT, "src", "repro", "faults"),
                os.path.join(REPO_ROOT, "src", "repro", "metrics"),
                os.path.join(REPO_ROOT, "src", "repro", "workloads"),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
