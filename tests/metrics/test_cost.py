"""Fig 1d cost metrics: DBA step function, TCO, crossover, trace adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.hardware import CPU
from repro.core.phases import TrainingEvent, TrainingPhase, event_to_telemetry
from repro.core.results import QueryRecord, RunResult
from repro.core.scenario import Scenario, Segment
from repro.errors import ConfigurationError
from repro.metrics.cost import (
    DBAModel,
    TCOModel,
    cost_breakdown,
    phases_from_trace,
    training_cost_to_outperform,
)
from repro.observability import Span, Trace, Tracer


class TestDBAModel:
    def test_step_costs(self):
        dba = DBAModel(hourly_rate=100.0, hours_per_level=(0.0, 10.0, 50.0))
        assert dba.cost_of_level(0) == 0.0
        assert dba.cost_of_level(1) == 1000.0
        assert dba.cost_of_level(2) == 5000.0

    def test_level_at_cost(self):
        dba = DBAModel(hourly_rate=100.0, hours_per_level=(0.0, 10.0, 50.0))
        assert dba.level_at_cost(0.0) == 0
        assert dba.level_at_cost(999.0) == 0
        assert dba.level_at_cost(1000.0) == 1
        assert dba.level_at_cost(1e9) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DBAModel(hours_per_level=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            DBAModel(hours_per_level=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            DBAModel(hourly_rate=-5.0)
        with pytest.raises(ConfigurationError):
            DBAModel().cost_of_level(99)


class TestTCO:
    def test_traditional_includes_retunes(self):
        tco = TCOModel(hardware_monthly=100.0, horizon_months=12.0)
        once = tco.traditional_tco(tuning_level=1, retunes=0)
        thrice = tco.traditional_tco(tuning_level=1, retunes=2)
        assert thrice - once == pytest.approx(2 * tco.dba.cost_of_level(1))

    def test_learned_scales_with_sessions(self):
        tco = TCOModel(hardware_monthly=100.0, horizon_months=12.0)
        base = tco.learned_tco(training_cost_per_session=2.0, sessions=0)
        many = tco.learned_tco(training_cost_per_session=2.0, sessions=10)
        assert many - base == pytest.approx(20.0)

    def test_hardware_floor_shared(self):
        tco = TCOModel(hardware_monthly=100.0, horizon_months=12.0)
        assert tco.traditional_tco(0) == tco.learned_tco(0.0, 0) == 1200.0


class TestCostBreakdown:
    def _result(self):
        queries = [
            QueryRecord(arrival=float(i), start=float(i), completion=float(i) + 0.1,
                        op="read", segment="a")
            for i in range(100)
        ]
        return RunResult(
            sut_name="x",
            scenario_name="s",
            queries=queries,
            segments=[("a", 0.0, 100.0)],
            training_events=[
                TrainingEvent(start=-1, duration=1, nominal_seconds=1,
                              hardware_name="cpu", cost=0.5, online=False)
            ],
        )

    def test_breakdown_components(self):
        breakdown = cost_breakdown(self._result(), serving_dollars_per_hour=3.6)
        assert breakdown.training_cost == pytest.approx(0.5)
        assert breakdown.execution_cost == pytest.approx(100.0 / 3600.0 * 3.6)
        assert breakdown.total_cost == breakdown.training_cost + breakdown.execution_cost
        assert breakdown.cost_per_kquery == pytest.approx(breakdown.total_cost / 0.1)


class TestPhasesFromTrace:
    """The trace is a second, exact source of the training timeline."""

    def _hand_built_trace(self, events):
        """Trace shaped like the driver's: train/adapt spans with the
        ``training_event`` attribute."""
        spans = []
        for i, event in enumerate(events):
            phase = "adapt" if event.online else "train"
            spans.append(
                Span(
                    name=f"retrain-{i}",
                    phase=phase,
                    start=float(i),
                    end=float(i) + 0.25,
                    attrs={"training_event": event_to_telemetry(event)},
                )
            )
        return Trace(spans=spans)

    def _events(self):
        return [
            TrainingEvent(start=-2.0, duration=2.0, nominal_seconds=2.0,
                          hardware_name="cpu", cost=0.375, online=False),
            TrainingEvent(start=10.0, duration=0.5, nominal_seconds=0.5,
                          hardware_name="cpu", cost=0.125, online=True,
                          label="drift-retrain"),
        ]

    def test_round_trip_exact(self):
        events = self._events()
        rebuilt = phases_from_trace(self._hand_built_trace(events))
        assert rebuilt == events  # frozen dataclass: field-exact equality

    def test_cost_breakdown_matches_hand_built_fixture_exactly(self):
        """cost_breakdown fed from the trace equals the result's own."""
        events = self._events()
        queries = [
            QueryRecord(arrival=float(i), start=float(i),
                        completion=float(i) + 0.1, op="read", segment="a")
            for i in range(50)
        ]
        result = RunResult(
            sut_name="x", scenario_name="s", queries=queries,
            segments=[("a", 0.0, 50.0)], training_events=events,
        )
        from_result = cost_breakdown(result)
        from_trace = cost_breakdown(
            result, training_events=phases_from_trace(self._hand_built_trace(events))
        )
        assert from_trace == from_result  # frozen dataclass, exact floats

    def test_driver_trace_reproduces_run_training_events(self):
        """End to end: a traced adaptive run's trace rebuilds the exact
        TrainingEvents the RunResult carries — offline phase included."""
        from repro.suts.kv_learned import LearnedKVStore
        from repro.workloads.distributions import UniformDistribution, ZipfDistribution
        from repro.workloads.drift import AbruptDrift
        from repro.workloads.generators import KVOperation, OperationMix, WorkloadSpec
        from repro.workloads.patterns import ConstantArrivals

        spec = WorkloadSpec(
            name="drift",
            mix=OperationMix({KVOperation.READ: 1.0}),
            key_drift=AbruptDrift(
                [UniformDistribution(0, 1000), ZipfDistribution(0, 1000, theta=1.3)],
                [1.5],
            ),
            arrivals=ConstantArrivals(400.0),
        )
        scenario = Scenario(
            name="traced",
            segments=[Segment(spec=spec, duration=4.0)],
            seed=3,
            initial_keys=np.linspace(0, 1000, 1500),
            initial_training=TrainingPhase(budget_seconds=5.0, hardware=CPU),
        )
        tracer = Tracer()
        result = VirtualClockDriver(DriverConfig(), tracer=tracer).run(
            LearnedKVStore(max_fanout=64, retrain_cooldown=1.0,
                           drift_window=256),
            scenario,
        )
        assert result.training_events, "fixture must produce training"
        rebuilt = phases_from_trace(tracer.finish())
        assert rebuilt == sorted(result.training_events, key=lambda e: e.start)
        assert cost_breakdown(result, training_events=rebuilt) == cost_breakdown(result)

    def test_empty_trace_yields_no_events(self):
        assert phases_from_trace(Trace()) == []


class TestCrossover:
    LEVELS = [(0.0, 100.0), (600.0, 130.0), (3000.0, 150.0)]

    def test_learned_wins_immediately(self):
        curve = [(0.0, 120.0), (10.0, 160.0)]
        assert training_cost_to_outperform(curve, self.LEVELS) == 0.0

    def test_crossover_in_middle(self):
        curve = [(0.0, 50.0), (100.0, 90.0), (500.0, 120.0), (2000.0, 170.0)]
        # At $500 learned=120 vs traditional(500)=100 -> crossover at 500.
        assert training_cost_to_outperform(curve, self.LEVELS) == 500.0

    def test_never_crosses(self):
        curve = [(0.0, 10.0), (10_000.0, 20.0)]
        assert training_cost_to_outperform(curve, self.LEVELS) is None

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            training_cost_to_outperform([], self.LEVELS)
