"""Drift-axis metric curves: specialization and adaptability vs Φ."""

from __future__ import annotations

import pytest

from repro.core.benchmark import Benchmark
from repro.data.datasets import build_dataset
from repro.errors import ConfigurationError
from repro.metrics.adaptability import adaptability_vs_drift
from repro.metrics.specialization import drift_specialization_curve
from repro.scenarios import abrupt_shift, drift_axis
from repro.suts.kv_traditional import TraditionalKVStore


@pytest.fixture(scope="module")
def sweep_runs():
    dataset = build_dataset("uniform", n=1000, seed=3)
    bench = Benchmark()
    runs = []
    for factor in (0.75, 0.25):  # deliberately out of order
        scenario = drift_axis(
            dataset, factor=factor, rate=150.0, segment_duration=2.0,
            train_budget=1.0,
        )
        runs.append((scenario, bench.run(TraditionalKVStore(), scenario)))
    return runs


class TestSpecializationCurve:
    def test_rows_sorted_and_shaped(self, sweep_runs):
        rows = drift_specialization_curve(sweep_runs, interval=0.5)
        assert [r["drift_factor"] for r in rows] == [0.25, 0.75]
        for row in rows:
            assert {"phi", "phi_data", "phi_workload", "mean_latency"} <= set(row)
            assert any(k.startswith("tp_") for k in row)
            assert row["mean_latency"] > 0.0

    def test_phi_grows_with_factor(self, sweep_runs):
        rows = drift_specialization_curve(sweep_runs, interval=0.5)
        assert rows[0]["phi"] < rows[1]["phi"]

    def test_rejects_missing_drift_factor(self, sweep_runs):
        dataset = build_dataset("uniform", n=500, seed=1)
        scenario = abrupt_shift(dataset, rate=50.0, segment_duration=1.0)
        _, result = sweep_runs[0]
        with pytest.raises(ConfigurationError):
            drift_specialization_curve([(scenario, result)])

    def test_rejects_unknown_segment(self, sweep_runs):
        with pytest.raises(ConfigurationError):
            drift_specialization_curve(sweep_runs, segment_label="nope")

    def test_rejects_bad_interval(self, sweep_runs):
        with pytest.raises(ConfigurationError):
            drift_specialization_curve(sweep_runs, interval=0.0)


class TestAdaptabilityVsDrift:
    def test_rows_sorted_and_shaped(self, sweep_runs):
        rows = adaptability_vs_drift(sweep_runs, resolution=0.5)
        assert [r["drift_factor"] for r in rows] == [0.25, 0.75]
        for row in rows:
            assert {
                "phi", "area_vs_ideal", "recovery_seconds", "throughput_cv",
            } <= set(row)

    def test_rejects_missing_drift_factor(self, sweep_runs):
        dataset = build_dataset("uniform", n=500, seed=1)
        scenario = abrupt_shift(dataset, rate=50.0, segment_duration=1.0)
        _, result = sweep_runs[0]
        with pytest.raises(ConfigurationError):
            adaptability_vs_drift([(scenario, result)])
