"""Resilience metrics on synthetic and driver-produced faulted runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import QueryRecord, RunResult
from repro.errors import ConfigurationError
from repro.faults import CrashFault, FaultPlan, LatencyFault, StallFault
from repro.metrics.resilience import (
    area_lost_to_faults,
    degraded_sla_mass,
    fault_recovery_times,
    resilience_report,
)

PLAN = FaultPlan([
    LatencyFault(start=4.0, end=6.0, multiplier=10.0),
    StallFault(at=10.0, duration=4.0),
])


def _result(rate=8.0, duration=20.0, stall_at=None, stall_len=0.0,
            slow=None, name="synthetic", faults=None):
    """Synthetic run: steady 10ms latency, optional stall/slow windows.

    rate=8 keeps the 1/rate arrival step exactly representable, so
    window-boundary comparisons have no float-accumulation surprises.
    """
    queries = []
    t = 0.0
    while t < duration:
        completion = t + 0.01
        if slow is not None and slow[0] <= t < slow[1]:
            completion = t + 0.1
        if stall_at is not None and stall_at <= t < stall_at + stall_len:
            completion = stall_at + stall_len + 0.01
        queries.append(
            QueryRecord(arrival=t, start=min(t, completion - 0.01),
                        completion=completion, op="read", segment="a")
        )
        t += 1.0 / rate
    return RunResult(
        sut_name=name,
        scenario_name="scn",
        queries=queries,
        segments=[("a", 0.0, duration)],
        scenario_description=(
            {"faults": faults.describe()} if faults else None
        ),
    )


class TestFaultRecoveryTimes:
    def test_shrugged_off_fault_scores_zero(self):
        result = _result()  # no actual disturbance
        impacts = fault_recovery_times(result, plan=PLAN)
        assert [i.kind for i in impacts] == ["latency", "stall"]
        assert all(i.recovery_seconds == 0.0 for i in impacts)

    def test_stall_scores_positive_recovery(self):
        result = _result(stall_at=10.0, stall_len=4.0)
        impacts = fault_recovery_times(
            result, plan=FaultPlan([StallFault(at=10.0, duration=4.0)]),
            window=1.0,
        )
        # The backlog only drains after the stall lifts at t=14.
        assert impacts[0].recovery_seconds == pytest.approx(4.0)

    def test_plan_recovered_from_run_record(self):
        result = _result(faults=PLAN)
        impacts = fault_recovery_times(result)  # no explicit plan
        assert [i.at for i in impacts] == [4.0, 10.0]

    def test_missing_plan_raises(self):
        with pytest.raises(ConfigurationError):
            fault_recovery_times(_result())


class TestDegradedSlaMass:
    def test_only_degraded_arrivals_attributed(self):
        # 0.1s latency inside [4, 6): 16 queries, 0.09s over a 0.01s SLA
        # each — but only those arrivals fall in the fault window.
        result = _result(slow=(4.0, 6.0))
        mass = degraded_sla_mass(
            result, sla=0.01,
            plan=FaultPlan([LatencyFault(start=4.0, end=6.0, multiplier=10.0)]),
        )
        assert mass == pytest.approx(16 * 0.09)

    def test_violations_outside_windows_ignored(self):
        result = _result(slow=(12.0, 14.0))  # slow outside the fault window
        mass = degraded_sla_mass(
            result, sla=0.01,
            plan=FaultPlan([LatencyFault(start=4.0, end=6.0, multiplier=10.0)]),
        )
        assert mass == 0.0

    def test_overlapping_windows_count_each_query_once(self):
        result = _result(slow=(4.0, 6.0))
        plan = FaultPlan([
            LatencyFault(start=4.0, end=6.0, multiplier=10.0),
            LatencyFault(start=4.0, end=6.0, multiplier=2.0),
        ])
        mass = degraded_sla_mass(result, sla=0.01, plan=plan)
        assert mass == pytest.approx(16 * 0.09)

    def test_invalid_sla_rejected(self):
        with pytest.raises(ConfigurationError):
            degraded_sla_mass(_result(), sla=0.0, plan=PLAN)


class TestAreaLost:
    def test_identical_runs_lose_nothing(self):
        assert area_lost_to_faults(_result(), _result()) == pytest.approx(0.0)

    def test_stalled_run_loses_positive_area(self):
        baseline = _result()
        faulted = _result(stall_at=10.0, stall_len=4.0)
        assert area_lost_to_faults(faulted, baseline) > 0.0


class TestResilienceReport:
    def test_full_report(self):
        baseline = _result()
        faulted = _result(stall_at=10.0, stall_len=4.0, faults=PLAN)
        report = resilience_report(
            faulted, sla=0.01, baseline=baseline, window=1.0
        )
        assert report.sut_name == "synthetic"
        assert len(report.impacts) == 2
        assert report.recovered_faults >= 1
        assert report.worst_recovery_seconds >= 4.0
        assert report.degraded_sla_mass > 0.0
        assert report.area_lost > 0.0

    def test_optional_sections_skipped(self):
        report = resilience_report(_result(faults=PLAN))
        assert report.degraded_sla_mass is None
        assert report.area_lost is None


class TestEndToEnd:
    def test_driver_run_scores_cleanly(self, tiny_dataset):
        """A real faulted run flows through every resilience kernel."""
        from dataclasses import replace

        from repro.core.driver import DriverConfig, VirtualClockDriver
        from repro.core.scenario import Scenario, Segment
        from repro.suts.kv_traditional import TraditionalKVStore
        from repro.workloads.distributions import UniformDistribution
        from repro.workloads.generators import simple_spec

        scenario = Scenario(
            name="resilience-e2e",
            segments=[Segment(
                spec=simple_spec("s0", UniformDistribution(0, 100), rate=200.0),
                duration=10.0,
            )],
            seed=3,
            initial_keys=tiny_dataset.keys,
        )
        plan = FaultPlan([
            StallFault(at=4.0, duration=1.0),
            CrashFault(at=7.0, recovery_seconds=0.5),
        ])
        driver = VirtualClockDriver(DriverConfig())
        baseline = driver.run(TraditionalKVStore(), scenario)
        faulted = driver.run(
            TraditionalKVStore(), replace(scenario, fault_plan=plan)
        )
        report = resilience_report(
            faulted, sla=0.01, baseline=baseline
        )
        assert [i.kind for i in report.impacts] == ["stall", "crash"]
        assert report.area_lost > 0.0
        assert np.isfinite(report.area_lost)
