"""Φ estimators: Jaccard, KS, MMD."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.similarity import (
    data_phi,
    jaccard_similarity,
    ks_statistic,
    mmd_rbf,
    workload_phi,
)
from repro.workloads.distributions import UniformDistribution, ZipfDistribution
from repro.workloads.generators import simple_spec


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_empty_sets(self):
        assert jaccard_similarity(set(), set()) == 1.0
        assert jaccard_similarity({1}, set()) == 0.0

    @given(
        st.sets(st.integers(), max_size=30),
        st.sets(st.integers(), max_size=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        value = jaccard_similarity(a, b)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_similarity(b, a)


class TestKS:
    def test_identical_samples_zero(self, rng):
        sample = rng.uniform(0, 1, 500)
        assert ks_statistic(sample, sample) == 0.0

    def test_same_distribution_small(self, rng):
        a = rng.uniform(0, 1, 3000)
        b = rng.uniform(0, 1, 3000)
        assert ks_statistic(a, b) < 0.06

    def test_disjoint_distributions_one(self, rng):
        a = rng.uniform(0, 1, 500)
        b = rng.uniform(10, 11, 500)
        assert ks_statistic(a, b) == pytest.approx(1.0)

    def test_monotone_in_shift(self, rng):
        base = rng.normal(0, 1, 2000)
        small = ks_statistic(base, rng.normal(0.3, 1, 2000))
        large = ks_statistic(base, rng.normal(2.0, 1, 2000))
        assert small < large

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ks_statistic([], [1.0])

    def test_symmetry(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(1, 2, 700)
        assert ks_statistic(a, b) == pytest.approx(ks_statistic(b, a))


class TestMMD:
    def test_same_distribution_near_zero(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(0, 1, 500)
        assert mmd_rbf(a, b) < 0.01

    def test_different_distributions_positive(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(5, 1, 500)
        assert mmd_rbf(a, b) > 0.1

    def test_monotone_in_separation(self, rng):
        base = rng.normal(0, 1, 400)
        near = mmd_rbf(base, rng.normal(0.5, 1, 400))
        far = mmd_rbf(base, rng.normal(3.0, 1, 400))
        assert near < far

    def test_subsampling_for_large_inputs(self, rng):
        a = rng.normal(0, 1, 5000)
        b = rng.normal(0, 1, 5000)
        value = mmd_rbf(a, b, max_points=200)
        assert value < 0.05

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            mmd_rbf([1.0], [1.0, 2.0])


class TestPhiHelpers:
    def test_workload_phi_zero_for_identical(self):
        a = simple_spec("a", UniformDistribution(0, 1))
        b = simple_spec("b", UniformDistribution(0, 1))
        assert workload_phi(a, b) == 0.0

    def test_workload_phi_positive_for_different(self):
        a = simple_spec("a", UniformDistribution(0, 1), read_fraction=1.0)
        b = simple_spec(
            "b", ZipfDistribution(0, 1, n_items=10), read_fraction=0.5
        )
        assert workload_phi(a, b) > 0.0

    def test_data_phi_methods(self, rng):
        a = rng.uniform(0, 1, 500)
        b = rng.uniform(5, 6, 500)
        assert data_phi(a, b, method="ks") == pytest.approx(1.0)
        assert 0.0 < data_phi(a, b, method="mmd") < 1.0
        with pytest.raises(ConfigurationError):
            data_phi(a, b, method="wasserstein")
