"""Regression tests for three metric-correctness bugs.

Each test failed against the pre-columnar implementations:

1. ``recovery_time`` returned ``0.0`` ("instant recovery") when the
   pre-change window was idle, because ``before == 0`` made the target
   ``0.0`` and the first window trivially passed.
2. ``latency_bands`` / ``multi_latency_bands`` accumulated
   ``t += interval`` in a float loop, so band edges drifted away from
   ``RunResult.throughput_series``'s ``np.arange`` edges on long runs
   (observed: 6 mis-bucketed bands and ~1e-10 start drift over 10k
   intervals of 0.1 s).
3. ``area_between_systems`` linearly interpolated step-function
   cumulative curves onto a sampling grid, biasing the area whenever
   completions fell between grid points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import QueryRecord, RunResult
from repro.metrics.adaptability import area_between_systems, recovery_time
from repro.metrics.sla import latency_bands, multi_latency_bands


def _one_query_run(completion: float, horizon: float, name: str) -> RunResult:
    return RunResult(
        sut_name=name,
        scenario_name="s",
        queries=[QueryRecord(0.0, 0.0, completion, "read", "a")],
        segments=[("a", 0.0, horizon)],
    )


class TestRecoveryTimeIdleBaseline:
    def test_idle_pre_change_window_returns_none(self):
        # All traffic starts at the change; there is nothing to recover to.
        queries = [
            QueryRecord(t, t, t + 0.01, "read", "b")
            for t in np.arange(10.0, 20.0, 0.1).tolist()
        ]
        result = RunResult(
            sut_name="x",
            scenario_name="s",
            queries=queries,
            segments=[("a", 0.0, 10.0), ("b", 10.0, 20.0)],
        )
        assert recovery_time(result, change_time=10.0, window=5.0) is None

    def test_empty_run_returns_none(self):
        result = RunResult(
            sut_name="x", scenario_name="s", queries=[],
            segments=[("a", 0.0, 10.0)],
        )
        assert recovery_time(result, change_time=5.0) is None

    def test_active_baseline_still_measured(self):
        queries = [
            QueryRecord(t, t, t + 0.01, "read", "a")
            for t in np.arange(0.0, 20.0, 0.1).tolist()
        ]
        result = RunResult(
            sut_name="x",
            scenario_name="s",
            queries=queries,
            segments=[("a", 0.0, 10.0), ("b", 10.0, 20.0)],
        )
        assert recovery_time(result, change_time=10.0, window=2.0) == 0.0


class TestBandEdgesMatchThroughputSeries:
    """Band totals vs throughput counts on a 10k-interval run.

    Completions sit exactly on the ``np.arange`` grid, where the old
    accumulated edges drifted past them.
    """

    INTERVAL = 0.1
    HORIZON = 1000.0

    def _run(self) -> RunResult:
        edges = np.arange(0.0, self.HORIZON + self.INTERVAL, self.INTERVAL)
        completions = edges[:-1]
        queries = [
            QueryRecord(max(c - 0.05, 0.0), max(c - 0.01, 0.0), c, "read", "a")
            for c in completions.tolist()
        ]
        return RunResult(
            sut_name="x",
            scenario_name="s",
            queries=queries,
            segments=[("a", 0.0, self.HORIZON)],
        )

    def test_latency_bands_agree_bucket_for_bucket(self):
        result = self._run()
        times, counts = result.throughput_series(interval=self.INTERVAL)
        bands = latency_bands(result, sla=1.0, interval=self.INTERVAL)
        assert len(bands) == times.size
        assert [b.start for b in bands] == times.tolist()
        assert [b.total for b in bands] == counts.astype(int).tolist()

    def test_multi_latency_bands_agree_bucket_for_bucket(self):
        result = self._run()
        times, counts = result.throughput_series(interval=self.INTERVAL)
        rows = multi_latency_bands(
            result, thresholds=[0.02, 0.2], interval=self.INTERVAL
        )
        assert len(rows) == times.size
        assert [t for t, _ in rows] == times.tolist()
        assert [sum(c) for _, c in rows] == counts.astype(int).tolist()


class TestAreaBetweenSystemsExact:
    def test_hand_computed_two_query_case(self):
        # A completes its one query at t=0.2, B at t=1.9, horizon 2.0:
        # A leads by exactly one query for 1.7 s, so the area is 1.7.
        # The old linear-interpolation implementation reported 1.0.
        a = _one_query_run(0.2, horizon=2.0, name="a")
        b = _one_query_run(1.9, horizon=2.0, name="b")
        assert area_between_systems(a, b) == pytest.approx(1.7, abs=1e-12)
        assert area_between_systems(b, a) == pytest.approx(-1.7, abs=1e-12)

    def test_identical_runs_have_zero_area(self):
        a = _one_query_run(0.7, horizon=3.0, name="a")
        assert area_between_systems(a, a) == 0.0

    def test_off_grid_completions_integrate_exactly(self):
        # Three queries each, deliberately between integer grid points.
        def run(completions, name):
            return RunResult(
                sut_name=name,
                scenario_name="s",
                queries=[
                    QueryRecord(0.0, 0.0, c, "read", "a") for c in completions
                ],
                segments=[("a", 0.0, 10.0)],
            )

        a = run([0.25, 0.75, 1.25], "a")
        b = run([8.25, 8.75, 9.25], "b")
        # Exact: sum over queries of (completion_b - completion_a) = 24.0.
        assert area_between_systems(a, b) == pytest.approx(24.0, abs=1e-12)
