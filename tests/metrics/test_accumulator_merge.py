"""Merge protocol: sharded accumulators == one accumulator, always.

The sharded streaming executor's correctness rests on one algebraic
claim: folding a query stream into N accumulator sets (one per
contiguous shard), shipping each set's ``state_dict()`` across a process
boundary as JSON, rebuilding with ``from_state``, and merging in stream
order yields the *same* finalized payloads as folding the whole stream
into one set. These tests pin that claim with hypothesis-drawn shard
partitions over real driver runs (clean and faulted), plus direct unit
fuzz for the primitives (:class:`~repro.metrics._buckets.GridCounts`,
:class:`~repro.metrics.descriptive.RunningStats`).

Tolerance taxonomy (same as DESIGN.md §10): grid/integer metrics are
byte-identical under any partition; float summaries that cross the Chan
mean/variance combine or per-shard ``fsum`` partials match to 1e-9
relative tolerance.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.core.streaming import StreamBlock
from repro.errors import ConfigurationError
from repro.faults import FaultPlan, LatencyFault, StallFault
from repro.metrics import (
    STREAMING_ACCUMULATOR_TYPES,
    accumulator_from_state,
    streaming_accumulators,
)
from repro.metrics._buckets import GridCounts
from repro.metrics.descriptive import RunningStats
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec

SLA = 0.050

#: Byte-identical under any shard partition (grid/integer derived).
EXACT_METRICS = {"throughput", "adaptability", "sla", "recovery", "adjustment_speed"}


def _scenario(faults: bool) -> Scenario:
    spec = simple_spec("steady", UniformDistribution(0, 1000), rate=150.0)
    plan = None
    if faults:
        plan = FaultPlan([
            LatencyFault(start=1.0, end=2.0, multiplier=25.0),
            StallFault(at=3.0, duration=0.5),
        ])
    return Scenario(
        name=f"merge-eq-{'faulted' if faults else 'clean'}",
        segments=[
            Segment(spec=spec, duration=2.5, label="a"),
            Segment(spec=spec, duration=2.5, label="b"),
        ],
        seed=11,
        initial_keys=np.linspace(0.0, 1000.0, 500),
        fault_plan=plan,
    )


_RUN_CACHE: dict = {}


def _reference_run(faults: bool):
    """In-memory run (cached): the ground truth column set."""
    if faults not in _RUN_CACHE:
        driver = VirtualClockDriver(DriverConfig())
        _RUN_CACHE[faults] = driver.run(TraditionalKVStore(), _scenario(faults))
    return _RUN_CACHE[faults]


def _fresh_accumulators(faults: bool):
    scenario = _scenario(faults)
    return streaming_accumulators(scenario, sla=SLA, plan=scenario.fault_plan)


def _fold_slice(accumulators, cols, lo, hi, block_size):
    """Fold ``cols[lo:hi]`` in blocks of ``block_size`` rows."""
    for b_lo in range(lo, hi, block_size):
        b_hi = min(b_lo + block_size, hi)
        block = StreamBlock(
            arrivals=cols.arrivals[b_lo:b_hi],
            starts=cols.starts[b_lo:b_hi],
            completions=cols.completions[b_lo:b_hi],
            op_codes=cols.op_codes[b_lo:b_hi],
            segment_codes=cols.segment_codes[b_lo:b_hi],
        )
        for acc in accumulators:
            acc.fold(block)


def _one_set_metrics(cols, faults: bool, horizon: float) -> dict:
    accumulators = _fresh_accumulators(faults)
    _fold_slice(accumulators, cols, 0, cols.size, cols.size or 1)
    return {acc.name: acc.finalize(horizon) for acc in accumulators}


def _assert_payloads_match(got: dict, want: dict) -> None:
    assert set(got) == set(want)
    for name, payload in got.items():
        if name in EXACT_METRICS:
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                want[name], sort_keys=True
            ), f"grid metric {name!r} observed the shard boundaries"
        else:
            _assert_close(name, payload, want[name])


def _assert_close(name, got, want, path=""):
    where = f"{name}{path}"
    if isinstance(want, dict):
        assert isinstance(got, dict) and set(got) == set(want), where
        for key in want:
            _assert_close(name, got[key], want[key], f"{path}.{key}")
    elif isinstance(want, (list, tuple)):
        assert len(got) == len(want), where
        for i, item in enumerate(want):
            _assert_close(name, got[i], item, f"{path}[{i}]")
    elif isinstance(want, float):
        assert np.isclose(got, want, rtol=1e-9, atol=0.0, equal_nan=True), (
            f"{where}: {got!r} != {want!r}"
        )
    else:
        assert got == want, f"{where}: {got!r} != {want!r}"


@st.composite
def shard_partitions(draw, n):
    """1..5 contiguous shards over ``range(n)`` (cut points sorted)."""
    k = draw(st.integers(min_value=0, max_value=min(4, n - 1)))
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return [0, *sorted(cuts), n]


class TestShardMergeEquivalence:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    @pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulted"])
    @pytest.mark.parametrize("round_trip", [False, True], ids=["direct", "json"])
    def test_merged_shards_match_single_set(self, faults, round_trip, data):
        reference = _reference_run(faults)
        cols = reference.columns
        horizon = max(reference.segments[-1][2], float(cols.completions.max()))
        want = _one_set_metrics(cols, faults, horizon)

        bounds = data.draw(shard_partitions(cols.size))
        block_size = data.draw(st.sampled_from([1, 7, 64, 10**9]))
        merged = None
        for lo, hi in zip(bounds, bounds[1:]):
            accumulators = _fresh_accumulators(faults)
            _fold_slice(accumulators, cols, lo, hi, block_size)
            if round_trip:
                # The exact wire trip a shard payload takes: state_dict
                # -> JSON -> registry rebuild in the parent process.
                accumulators = [
                    accumulator_from_state(
                        acc.name,
                        json.loads(json.dumps(acc.state_dict())),
                    )
                    for acc in accumulators
                ]
            if merged is None:
                merged = accumulators
            else:
                for mine, theirs in zip(merged, accumulators):
                    mine.merge(theirs)
        got = {acc.name: acc.finalize(horizon) for acc in merged}
        _assert_payloads_match(got, want)

    def test_registry_covers_default_accumulator_set(self):
        names = {acc.name for acc in _fresh_accumulators(faults=True)}
        assert names <= set(STREAMING_ACCUMULATOR_TYPES)

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError):
            accumulator_from_state("no-such-accumulator", {})


class TestGridCountsMerge:
    def _reference_counts(self, values, interval, start, k):
        """Bucket counts the offline way: np.histogram over the grid."""
        edges = start + interval * np.arange(k + 1)
        hist, _ = np.histogram(values, bins=edges)
        return hist

    def test_below_start_values_are_dropped_exactly(self):
        # Regression guard: values below the grid start never count
        # toward any bucket — same contract as np.histogram's below-
        # range drop — and new edges created later stay consistent.
        grid = GridCounts(interval=1.0, start=10.0)
        grid.fold(np.array([3.0, 9.999, 10.0, 10.5, 12.2]))
        edges = 10.0 + np.arange(4)  # [10, 11, 12]... buckets
        counts = grid.counts_on(edges)
        want = self._reference_counts(
            np.array([3.0, 9.999, 10.0, 10.5, 12.2]), 1.0, 10.0, 3
        )
        assert np.array_equal(counts, want)
        assert grid.count == 5  # below-start rows still count folded rows

    @given(
        values=st.lists(
            st.floats(min_value=-50.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        ),
        cut=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_split_fold_merge_equals_whole_fold(self, values, cut):
        data = np.asarray(values, dtype=np.float64)
        cut = min(cut, data.size)
        whole = GridCounts(interval=2.0, start=-10.0)
        whole.fold(data)
        left = GridCounts(interval=2.0, start=-10.0)
        left.fold(data[:cut])
        right = GridCounts(interval=2.0, start=-10.0)
        right.fold(data[cut:])
        left.merge(GridCounts.from_state(
            json.loads(json.dumps(right.state_dict()))
        ))
        edges = -10.0 + 2.0 * np.arange(40)
        assert np.array_equal(left.counts_on(edges), whole.counts_on(edges))
        assert np.array_equal(
            left.cumulative_on(edges), whole.cumulative_on(edges)
        )
        assert left.count == whole.count

    def test_merge_rejects_mismatched_grids(self):
        with pytest.raises(ValueError):
            GridCounts(interval=1.0).merge(GridCounts(interval=2.0))
        with pytest.raises(ValueError):
            GridCounts(interval=1.0, start=0.0).merge(
                GridCounts(interval=1.0, start=5.0)
            )


class TestRunningStatsMerge:
    @given(
        left=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            max_size=100,
        ),
        right=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            max_size=100,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_chan_combine_matches_whole_stream(self, left, right):
        both = np.asarray(left + right, dtype=np.float64)
        whole = RunningStats()
        whole.update(both)
        a = RunningStats()
        a.update(np.asarray(left, dtype=np.float64))
        b = RunningStats()
        b.update(np.asarray(right, dtype=np.float64))
        a.merge(RunningStats.from_state(
            json.loads(json.dumps(b.state_dict()))
        ))
        assert a.count == whole.count
        if whole.count:
            assert math.isclose(a.mean, whole.mean, rel_tol=1e-9, abs_tol=1e-9)
            assert math.isclose(a.std, whole.std, rel_tol=1e-7, abs_tol=1e-9)
            assert a.minimum == whole.minimum
            assert a.maximum == whole.maximum
