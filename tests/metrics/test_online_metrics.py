"""Online accumulators == offline kernels, for every block size.

The streaming pipeline's contract is that block boundaries are
unobservable: a run chopped into blocks of 1, 7, 4096, or more than the
whole run — with faults on or off, tracing on or off — must produce the
same metric payloads and the same spill manifests as the in-memory
path. Integer/grid metrics must match *byte for byte*; float
summations (latency mean/std, per-segment mean latency, degraded SLA
mass) use per-block partials whose summation tree legitimately depends
on the blocking, so they are held to last-few-ULP tolerance instead
(the scoping DESIGN.md section 9 documents).

Driver runs are cached per (faults, tracer) configuration; the
hypothesis tests then fold the *same* column set under randomized block
partitions, so examples are cheap while boundaries are adversarial.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import DriverConfig, VirtualClockDriver
from repro.core.scenario import Scenario, Segment
from repro.core.streaming import StreamBlock, load_spilled_columns
from repro.faults import FaultPlan, LatencyFault, StallFault
from repro.metrics import streaming_accumulators
from repro.observability import Tracer
from repro.suts.kv_traditional import TraditionalKVStore
from repro.workloads.distributions import UniformDistribution
from repro.workloads.generators import simple_spec

BLOCK_SIZES = (1, 7, 4096, 10**9)
SLA = 0.050

#: Payloads that must be byte-identical across blockings (grid/integer
#: derived). Everything else carries float-sum partials -> ULP tolerance.
EXACT_METRICS = {"throughput", "adaptability", "sla", "recovery", "adjustment_speed"}


def _scenario(faults: bool) -> Scenario:
    spec = simple_spec("steady", UniformDistribution(0, 1000), rate=150.0)
    plan = None
    if faults:
        plan = FaultPlan([
            LatencyFault(start=1.0, end=2.0, multiplier=25.0),
            StallFault(at=3.0, duration=0.5),
        ])
    return Scenario(
        name=f"online-eq-{'faulted' if faults else 'clean'}",
        segments=[
            Segment(spec=spec, duration=2.5, label="a"),
            Segment(spec=spec, duration=2.5, label="b"),
        ],
        seed=11,
        initial_keys=np.linspace(0.0, 1000.0, 500),
        fault_plan=plan,
    )


_RUN_CACHE: dict = {}


def _reference_run(faults: bool):
    """In-memory run (cached): the ground truth column set."""
    if faults not in _RUN_CACHE:
        driver = VirtualClockDriver(DriverConfig())
        _RUN_CACHE[faults] = driver.run(TraditionalKVStore(), _scenario(faults))
    return _RUN_CACHE[faults]


def _one_block_metrics(columns, faults: bool, horizon: float) -> dict:
    """Fold the full column set as ONE block: the blocking-free answer."""
    scenario = _scenario(faults)
    accumulators = streaming_accumulators(
        scenario, sla=SLA, plan=scenario.fault_plan
    )
    block = StreamBlock(
        arrivals=columns.arrivals,
        starts=columns.starts,
        completions=columns.completions,
        op_codes=columns.op_codes,
        segment_codes=columns.segment_codes,
    )
    for acc in accumulators:
        acc.fold(block)
    return {acc.name: acc.finalize(horizon) for acc in accumulators}


def _assert_payloads_match(got: dict, want: dict) -> None:
    assert set(got) == set(want)
    for name, payload in got.items():
        if name in EXACT_METRICS:
            assert json.dumps(payload, sort_keys=True) == json.dumps(
                want[name], sort_keys=True
            ), f"grid metric {name!r} observed the block boundaries"
        else:
            _assert_close(name, payload, want[name])


def _assert_close(name, got, want, path=""):
    where = f"{name}{path}"
    if isinstance(want, dict):
        assert isinstance(got, dict) and set(got) == set(want), where
        for key in want:
            _assert_close(name, got[key], want[key], f"{path}.{key}")
    elif isinstance(want, (list, tuple)):
        assert len(got) == len(want), where
        for i, item in enumerate(want):
            _assert_close(name, got[i], item, f"{path}[{i}]")
    elif isinstance(want, float):
        assert np.isclose(got, want, rtol=1e-9, atol=0.0, equal_nan=True), (
            f"{where}: {got!r} != {want!r}"
        )
    else:
        assert got == want, f"{where}: {got!r} != {want!r}"


class TestStreamingDriverEquivalence:
    @pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulted"])
    @pytest.mark.parametrize("tracer", [False, True], ids=["untraced", "traced"])
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_metrics_and_manifest_identical(
        self, faults, tracer, block_size, tmp_path
    ):
        reference = _reference_run(faults)
        driver = VirtualClockDriver(
            DriverConfig(block_size=block_size),
            tracer=Tracer() if tracer else None,
        )
        summary = driver.run_streaming(
            TraditionalKVStore(),
            _scenario(faults),
            sla=SLA,
            spill_dir=str(tmp_path / "spill"),
        )

        cols = reference.columns
        assert summary.num_queries == cols.size
        want = _one_block_metrics(cols, faults, summary.horizon)
        _assert_payloads_match(summary.metrics, want)

        # The spill manifest is blocking-invariant (shards are cut by
        # shard_rows, not by driver block), and the bytes round-trip.
        manifest = summary.spill
        assert manifest["rows"] == cols.size
        assert tuple(manifest["op_vocab"]) == cols.op_vocab
        assert tuple(manifest["segment_vocab"]) == cols.segment_vocab
        spilled = load_spilled_columns(manifest["directory"])
        for name in (
            "arrivals", "starts", "completions", "op_codes", "segment_codes",
        ):
            assert np.array_equal(getattr(spilled, name), getattr(cols, name)), (
                f"spilled column {name!r} diverged at block_size={block_size}"
            )


@st.composite
def block_partitions(draw, n):
    """Random cut points partitioning ``range(n)`` into blocks."""
    k = draw(st.integers(min_value=0, max_value=min(24, n - 1)))
    cuts = draw(
        st.lists(
            st.integers(min_value=1, max_value=n - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return [0, *sorted(cuts), n]


class TestRandomPartitionInvariance:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    @pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulted"])
    def test_grid_metrics_blind_to_partition(self, faults, data):
        reference = _reference_run(faults)
        cols = reference.columns
        horizon = max(reference.segments[-1][2], float(cols.completions.max()))
        want = _one_block_metrics(cols, faults, horizon)

        bounds = data.draw(block_partitions(cols.size))
        scenario = _scenario(faults)
        accumulators = streaming_accumulators(
            scenario, sla=SLA, plan=scenario.fault_plan
        )
        for lo, hi in zip(bounds, bounds[1:]):
            block = StreamBlock(
                arrivals=cols.arrivals[lo:hi],
                starts=cols.starts[lo:hi],
                completions=cols.completions[lo:hi],
                op_codes=cols.op_codes[lo:hi],
                segment_codes=cols.segment_codes[lo:hi],
            )
            for acc in accumulators:
                acc.fold(block)
        got = {acc.name: acc.finalize(horizon) for acc in accumulators}
        _assert_payloads_match(got, want)
