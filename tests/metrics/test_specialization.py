"""Fig 1a specialization report on a real (small) run."""

from __future__ import annotations

import pytest

from repro.core.benchmark import Benchmark
from repro.errors import ConfigurationError
from repro.metrics.specialization import specialization_report
from repro.scenarios import default_dataset, specialization_ladder
from repro.suts.kv_traditional import TraditionalKVStore


@pytest.fixture(scope="module")
def ladder_run():
    dataset = default_dataset(n=5000, seed=3)
    scenario, holdout = specialization_ladder(
        dataset, rate=150.0, segment_duration=4.0, train_budget=1e9
    )
    result = Benchmark().run(TraditionalKVStore(), scenario)
    return scenario, result, holdout


class TestReport:
    def test_segments_sorted_by_phi(self, ladder_run):
        scenario, result, holdout = ladder_run
        report = specialization_report(result, scenario)
        phis = [s.phi for s in report.segments]
        assert phis == sorted(phis)

    def test_baseline_has_zero_phi(self, ladder_run):
        scenario, result, _ = ladder_run
        report = specialization_report(result, scenario)
        assert report.segments[0].label == report.baseline_label
        assert report.segments[0].phi == pytest.approx(0.0, abs=0.05)

    def test_phi_grows_with_hotspot_distance(self, ladder_run):
        scenario, result, _ = ladder_run
        report = specialization_report(result, scenario)
        by_label = {s.label: s for s in report.segments}
        assert by_label["dist-1"].phi < by_label["dist-4"].phi

    def test_holdout_marked(self, ladder_run):
        scenario, result, holdout = ladder_run
        report = specialization_report(result, scenario, holdout_labels=(holdout,))
        flagged = [s.label for s in report.segments if s.holdout]
        assert flagged == [holdout]

    def test_every_segment_present(self, ladder_run):
        scenario, result, _ = ladder_run
        report = specialization_report(result, scenario)
        assert len(report.segments) == len(scenario.segments)

    def test_throughput_stats_positive(self, ladder_run):
        scenario, result, _ = ladder_run
        report = specialization_report(result, scenario)
        for seg in report.segments:
            assert seg.throughput.median > 0

    def test_rows_flat_export(self, ladder_run):
        scenario, result, _ = ladder_run
        rows = specialization_report(result, scenario).rows()
        assert all("phi" in row and "tp_median" in row for row in rows)

    def test_unknown_baseline_rejected(self, ladder_run):
        scenario, result, _ = ladder_run
        with pytest.raises(ConfigurationError):
            specialization_report(result, scenario, baseline_label="nope")

    def test_bad_interval_rejected(self, ladder_run):
        scenario, result, _ = ladder_run
        with pytest.raises(ConfigurationError):
            specialization_report(result, scenario, interval=0.0)
