"""Fig 1b/1c metrics on synthetic run records."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import QueryRecord, RunResult
from repro.errors import ConfigurationError
from repro.metrics.adaptability import (
    adaptability_report,
    area_between_systems,
    area_vs_ideal,
    cumulative_curve,
    recovery_time,
)
from repro.metrics.sla import (
    adjustment_speed,
    calibrate_sla,
    latency_bands,
    multi_latency_bands,
)


def _steady_result(rate=10.0, duration=20.0, latency=0.01, name="steady"):
    """A perfectly steady synthetic run."""
    queries = []
    t = 0.0
    while t < duration:
        queries.append(
            QueryRecord(arrival=t, start=t, completion=t + latency, op="read",
                        segment="a" if t < duration / 2 else "b")
        )
        t += 1.0 / rate
    return RunResult(
        sut_name=name,
        scenario_name="scn",
        queries=queries,
        segments=[("a", 0.0, duration / 2), ("b", duration / 2, duration)],
    )


def _stalled_result(rate=10.0, duration=20.0, stall_at=10.0, stall_len=4.0):
    """Steady, but completions inside the stall window slide to its end."""
    queries = []
    t = 0.0
    while t < duration:
        completion = t + 0.01
        if stall_at <= t < stall_at + stall_len:
            completion = stall_at + stall_len + 0.01
        queries.append(
            QueryRecord(arrival=t, start=min(t, completion - 0.01),
                        completion=completion, op="read",
                        segment="a" if t < 10 else "b")
        )
        t += 1.0 / rate
    return RunResult(
        sut_name="stalled",
        scenario_name="scn",
        queries=queries,
        segments=[("a", 0.0, 10.0), ("b", 10.0, 20.0)],
    )


class TestCumulativeCurve:
    def test_monotone_and_total(self):
        result = _steady_result()
        times, cum = cumulative_curve(result)
        assert (np.diff(cum) >= 0).all()
        assert cum[-1] == len(result.queries)

    def test_resolution_validated(self):
        with pytest.raises(ConfigurationError):
            cumulative_curve(_steady_result(), resolution=0.0)


class TestAreaVsIdeal:
    def test_steady_run_near_zero(self):
        area = area_vs_ideal(_steady_result(), resolution=0.1)
        assert abs(area) < 20.0

    def test_stall_produces_positive_area(self):
        area = area_vs_ideal(_stalled_result(), resolution=0.1)
        assert area > 50.0

    def test_custom_ideal_rate(self):
        result = _steady_result(rate=10.0)
        # Against an impossible ideal, the lag is large.
        assert area_vs_ideal(result, ideal_rate=100.0) > area_vs_ideal(result)


class TestAreaBetween:
    def test_identical_systems_zero(self):
        a = _steady_result(name="a")
        b = _steady_result(name="b")
        assert abs(area_between_systems(a, b)) < 1e-6

    def test_stalled_system_behind(self):
        good = _steady_result()
        bad = _stalled_result()
        assert area_between_systems(good, bad) > 0
        assert area_between_systems(bad, good) < 0


class TestRecovery:
    def test_steady_recovers_immediately(self):
        assert recovery_time(_steady_result(), change_time=10.0, window=2.0) == 0.0

    def test_stall_delays_recovery(self):
        result = _stalled_result(stall_at=10.0, stall_len=4.0)
        recovery = recovery_time(result, change_time=10.0, window=2.0)
        assert recovery is not None and recovery >= 4.0

    def test_report_bundles_metrics(self):
        report = adaptability_report(_stalled_result())
        assert report.area_vs_ideal > 0
        assert report.throughput_cv > 0
        assert report.recovery_seconds is not None


class TestSLA:
    def test_calibration_from_baseline(self):
        baseline = _steady_result(latency=0.02)
        sla = calibrate_sla(baseline, percentile=99.0, headroom=1.5)
        assert sla == pytest.approx(0.03, rel=0.05)

    def test_bands_split_correctly(self):
        result = _stalled_result()
        sla = 0.1
        bands = latency_bands(result, sla=sla, interval=1.0)
        violations = sum(b.violated for b in bands)
        expected = sum(1 for q in result.queries if q.latency > sla)
        assert violations == expected
        assert sum(b.total for b in bands) == len(result.queries)

    def test_violations_cluster_after_stall(self):
        result = _stalled_result(stall_at=10.0, stall_len=4.0)
        bands = latency_bands(result, sla=0.1, interval=1.0)
        before = sum(b.violated for b in bands if b.start < 10.0)
        after = sum(b.violated for b in bands if 10.0 <= b.start < 16.0)
        assert before == 0 and after > 0

    def test_multi_bands(self):
        result = _stalled_result()
        rows = multi_latency_bands(result, thresholds=[0.05, 0.5, 2.0], interval=2.0)
        for _, counts in rows:
            assert len(counts) == 4
        total = sum(sum(c) for _, c in rows)
        assert total == len(result.queries)

    def test_multi_bands_validates_thresholds(self):
        with pytest.raises(ConfigurationError):
            multi_latency_bands(_steady_result(), thresholds=[0.5, 0.1])

    def test_adjustment_speed(self):
        steady = _steady_result()
        stalled = _stalled_result()
        sla = 0.1
        assert adjustment_speed(steady, 10.0, 50, sla) == 0.0
        assert adjustment_speed(stalled, 10.0, 50, sla) > 0.0

    def test_adjustment_speed_validates_n(self):
        with pytest.raises(ConfigurationError):
            adjustment_speed(_steady_result(), 10.0, 0, 0.1)


class TestLatencyTimeline:
    def test_percentiles_per_bucket(self):
        from repro.metrics.adaptability import latency_timeline

        result = _stalled_result(stall_at=10.0, stall_len=4.0)
        times, series = latency_timeline(result, interval=1.0,
                                         percentiles=(50.0, 99.0))
        assert set(series) == {50.0, 99.0}
        assert times.size == series[50.0].size
        # p99 >= p50 wherever both are defined.
        both = ~np.isnan(series[50.0])
        assert (series[99.0][both] >= series[50.0][both]).all()

    def test_transition_visible(self):
        from repro.metrics.adaptability import latency_timeline

        result = _stalled_result(stall_at=10.0, stall_len=4.0)
        _, series = latency_timeline(result, interval=1.0)
        p50 = series[50.0]
        before = np.nanmax(p50[:9])
        during = np.nanmax(p50[13:16])  # stall completions land ~t=14
        assert during > before * 10

    def test_idle_buckets_are_nan(self):
        from repro.core.results import QueryRecord, RunResult
        from repro.metrics.adaptability import latency_timeline

        result = RunResult(
            sut_name="x", scenario_name="s",
            queries=[QueryRecord(0.0, 0.0, 0.5, "read", "a")],
            segments=[("a", 0.0, 5.0)],
        )
        _, series = latency_timeline(result, interval=1.0)
        assert np.isnan(series[50.0][3])
        assert not np.isnan(series[50.0][0])

    def test_validates_interval(self):
        from repro.errors import ConfigurationError
        from repro.metrics.adaptability import latency_timeline

        with pytest.raises(ConfigurationError):
            latency_timeline(_steady_result(), interval=0.0)
