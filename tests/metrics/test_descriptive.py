"""Box-plot statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics.descriptive import box_stats, percentile


class TestBoxStats:
    def test_five_numbers(self):
        stats = box_stats(list(range(1, 101)))
        assert stats.minimum == 1 and stats.maximum == 100
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)

    def test_outliers_detected(self):
        values = [10.0] * 50 + [1000.0]
        stats = box_stats(values)
        assert stats.outliers == [1000.0]
        assert stats.whisker_high == 10.0

    def test_no_outliers_whiskers_are_extremes(self, rng):
        values = rng.uniform(0, 1, 200)
        stats = box_stats(values)
        if not stats.outliers:
            assert stats.whisker_low == stats.minimum
            assert stats.whisker_high == stats.maximum

    def test_single_value(self):
        stats = box_stats([5.0])
        assert stats.minimum == stats.median == stats.maximum == 5.0
        assert stats.iqr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            box_stats([])

    def test_dispersion(self):
        stats = box_stats([1, 2, 3, 4, 5])
        assert stats.dispersion == pytest.approx(stats.iqr / 3.0)

    def test_row_export(self):
        row = box_stats([1.0, 2.0, 3.0]).row()
        assert set(row) >= {"min", "q1", "median", "q3", "max", "mean", "count"}

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, values):
        stats = box_stats(values)
        assert stats.minimum <= stats.q1 <= stats.median <= stats.q3 <= stats.maximum
        assert stats.whisker_low >= stats.minimum - 1e-9
        assert stats.whisker_high <= stats.maximum + 1e-9
        assert stats.count == len(values)
        for outlier in stats.outliers:
            assert outlier < stats.q1 - 1.5 * stats.iqr - 1e-12 or (
                outlier > stats.q3 + 1.5 * stats.iqr - 1e-12
            )


class TestPercentile:
    def test_basic(self):
        assert percentile(range(101), 50) == pytest.approx(50.0)
        assert percentile(range(101), 99) == pytest.approx(99.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)
