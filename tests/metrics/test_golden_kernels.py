"""Golden tests: vectorized metric kernels vs the pre-refactor loops.

The reference implementations below are the exact per-interval Python
loops the metric modules shipped before the columnar refactor (with one
deliberate exception: ``ref_recovery_time`` includes the ``before == 0``
→ ``None`` bugfix, which is covered separately in
``test_metric_bugfixes.py``). Every vectorized kernel must reproduce
them on randomized runs, empty runs, single-query runs, and runs with
completions tied exactly to bucket edges.

All generated timestamps are dyadic rationals (multiples of 1/64) and
all intervals are powers of two, so the reference loops' float
accumulation is exact and any disagreement is a real kernel bug, not
floating-point noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import QueryRecord, RunResult
from repro.metrics.adaptability import (
    area_vs_ideal,
    cumulative_curve,
    latency_timeline,
    recovery_time,
)
from repro.metrics.sla import adjustment_speed, latency_bands, multi_latency_bands
from repro.metrics.specialization import _segment_throughputs

DURATION = 60.0
INTERVALS = (0.25, 0.5, 1.0, 2.0)


# -- reference implementations (pre-refactor) ----------------------------------------


def ref_throughput_series(result, interval=1.0):
    completions = np.asarray(sorted(q.completion for q in result.queries))
    horizon = max(
        result.duration, max((q.completion for q in result.queries), default=0.0)
    )
    edges = np.arange(0.0, horizon + interval, interval)
    counts, _ = np.histogram(completions, bins=edges)
    return edges[:-1], counts.astype(np.float64)


def ref_latency_bands(result, sla, interval=1.0):
    completions = np.asarray([q.completion for q in result.queries])
    latencies = np.asarray([q.latency for q in result.queries])
    horizon = max(result.duration, completions.max() if completions.size else 0.0)
    bands = []
    t = 0.0
    while t < horizon:
        mask = (completions >= t) & (completions < t + interval)
        over = int((latencies[mask] > sla).sum())
        total = int(mask.sum())
        bands.append((t, total - over, over))
        t += interval
    return bands


def ref_multi_latency_bands(result, thresholds, interval=1.0):
    ts = list(thresholds)
    completions = np.asarray([q.completion for q in result.queries])
    latencies = np.asarray([q.latency for q in result.queries])
    horizon = max(result.duration, completions.max() if completions.size else 0.0)
    edges = np.asarray([0.0] + ts + [np.inf])
    out = []
    t = 0.0
    while t < horizon:
        mask = (completions >= t) & (completions < t + interval)
        counts, _ = np.histogram(latencies[mask], bins=edges)
        out.append((t, counts.astype(int).tolist()))
        t += interval
    return out


def ref_cumulative_curve(result, resolution=1.0):
    completions = np.asarray(sorted(q.completion for q in result.queries))
    horizon = max(result.duration, completions[-1] if completions.size else 0.0)
    times = np.arange(0.0, horizon + resolution, resolution)
    cum = np.searchsorted(completions, times, side="right").astype(np.float64)
    return times, cum


def ref_area_vs_ideal(result, ideal_rate=None, resolution=1.0):
    times, cum = ref_cumulative_curve(result, resolution)
    if times.size == 0 or cum[-1] == 0:
        return 0.0
    horizon = times[-1]
    if ideal_rate is None:
        ideal_rate = cum[-1] / horizon if horizon > 0 else 0.0
    ideal = np.minimum(ideal_rate * times, cum[-1])
    return float(np.trapezoid(ideal - cum, times))


def ref_recovery_time(result, change_time, window=5.0, recovery_fraction=0.9):
    completions = np.asarray(sorted(q.completion for q in result.queries))
    if completions.size == 0:
        return None
    before = np.count_nonzero(
        (completions >= change_time - window) & (completions < change_time)
    )
    if before == 0:  # the bugfix, applied to the reference loop
        return None
    target = recovery_fraction * before
    horizon = max(result.duration, completions[-1])
    t = change_time
    while t + window <= horizon + window:
        count = np.count_nonzero((completions >= t) & (completions < t + window))
        if count >= target:
            return float(t - change_time)
        t += window
    return None


def ref_latency_timeline(result, interval=1.0, percentiles=(50.0, 99.0)):
    completions = np.asarray([q.completion for q in result.queries])
    latencies = np.asarray([q.latency for q in result.queries])
    horizon = max(result.duration, completions.max() if completions.size else 0.0)
    edges = np.arange(0.0, horizon + interval, interval)
    times = edges[:-1]
    out = {p: np.full(times.size, np.nan) for p in percentiles}
    if completions.size:
        buckets = np.clip(
            (completions / interval).astype(np.int64), 0, times.size - 1
        )
        order = np.argsort(buckets, kind="stable")
        sorted_buckets = buckets[order]
        sorted_latencies = latencies[order]
        boundaries = np.searchsorted(sorted_buckets, np.arange(times.size + 1))
        for i in range(times.size):
            chunk = sorted_latencies[boundaries[i] : boundaries[i + 1]]
            if chunk.size:
                for p in percentiles:
                    out[p][i] = float(np.percentile(chunk, p))
    return times, out


def ref_adjustment_speed(result, change_time, n_queries, sla):
    after = sorted(
        (q for q in result.queries if q.arrival >= change_time),
        key=lambda q: q.arrival,
    )[:n_queries]
    return float(sum(max(0.0, q.latency - sla) for q in after))


def ref_segment_throughputs(result, lo, hi, interval):
    completions = np.asarray(
        [q.completion for q in result.queries if lo <= q.completion < hi]
    )
    edges = np.arange(lo, hi + interval, interval)
    if edges.size < 2:
        return np.zeros(0)
    counts, _ = np.histogram(completions, bins=edges)
    return counts / interval


# -- run generators ------------------------------------------------------------------


def _dyadic(rng, low, high, size):
    """Random multiples of 1/64 in [low, high] — exact float64 values."""
    return rng.integers(int(low * 64), int(high * 64), size=size) / 64.0


def random_run(seed: int, n: int = 250, tie_edges: bool = True) -> RunResult:
    """A random-but-valid run; optionally snaps some completions to bucket edges."""
    rng = np.random.default_rng(seed)
    arrivals = np.sort(_dyadic(rng, 0.0, 50.0, n))
    delays = _dyadic(rng, 0.0, 4.0, n)
    services = _dyadic(rng, 0.0, 2.0, n) + 1.0 / 64.0
    starts = arrivals + delays
    completions = starts + services
    if tie_edges:
        # Snap ~20% of completions to exact multiples of every interval
        # under test (multiples of 2.0 cover 0.25/0.5/1.0 too).
        snap = rng.random(n) < 0.2
        completions[snap] = np.ceil(completions[snap] / 2.0) * 2.0
    completions = np.minimum(completions, DURATION - 1.0 / 64.0)
    starts = np.minimum(starts, completions)
    queries = [
        QueryRecord(a, s, c, "read" if i % 3 else "scan", "a" if a < 25.0 else "b")
        for i, (a, s, c) in enumerate(
            zip(arrivals.tolist(), starts.tolist(), completions.tolist())
        )
    ]
    return RunResult(
        sut_name=f"rand-{seed}",
        scenario_name="golden",
        queries=queries,
        segments=[("a", 0.0, 25.0), ("b", 25.0, DURATION)],
    )


def empty_run() -> RunResult:
    return RunResult(
        sut_name="empty", scenario_name="golden", queries=[],
        segments=[("a", 0.0, 10.0)],
    )


def single_query_run() -> RunResult:
    return RunResult(
        sut_name="one", scenario_name="golden",
        queries=[QueryRecord(1.5, 1.5, 3.0, "read", "a")],
        segments=[("a", 0.0, 10.0)],
    )


def all_runs():
    cases = [empty_run(), single_query_run()]
    cases += [random_run(seed) for seed in range(8)]
    cases += [random_run(seed, n=40, tie_edges=False) for seed in (100, 101)]
    return cases


RUNS = all_runs()
RUN_IDS = [r.sut_name for r in RUNS]


# -- golden comparisons --------------------------------------------------------------


@pytest.mark.parametrize("result", RUNS, ids=RUN_IDS)
@pytest.mark.parametrize("interval", INTERVALS)
class TestBucketedKernelsMatchReference:
    def test_throughput_series(self, result, interval):
        ref_t, ref_c = ref_throughput_series(result, interval)
        got_t, got_c = result.throughput_series(interval)
        assert np.array_equal(ref_t, got_t)
        assert np.array_equal(ref_c, got_c)

    def test_latency_bands(self, result, interval):
        ref = ref_latency_bands(result, sla=0.5, interval=interval)
        got = latency_bands(result, sla=0.5, interval=interval)
        assert [(b.start, b.within_sla, b.violated) for b in got] == ref

    def test_multi_latency_bands(self, result, interval):
        ref = ref_multi_latency_bands(result, [0.25, 1.0], interval=interval)
        got = multi_latency_bands(result, [0.25, 1.0], interval=interval)
        assert got == ref

    def test_cumulative_curve(self, result, interval):
        ref_t, ref_c = ref_cumulative_curve(result, interval)
        got_t, got_c = cumulative_curve(result, interval)
        assert np.array_equal(ref_t, got_t)
        assert np.array_equal(ref_c, got_c)

    def test_latency_timeline(self, result, interval):
        ref_t, ref_s = ref_latency_timeline(result, interval)
        got_t, got_s = latency_timeline(result, interval)
        assert np.array_equal(ref_t, got_t)
        assert set(ref_s) == set(got_s)
        for p in ref_s:
            assert np.array_equal(ref_s[p], got_s[p], equal_nan=True), p


@pytest.mark.parametrize("result", RUNS, ids=RUN_IDS)
class TestScalarKernelsMatchReference:
    def test_area_vs_ideal(self, result):
        assert area_vs_ideal(result) == pytest.approx(
            ref_area_vs_ideal(result), rel=1e-12, abs=1e-12
        )

    @pytest.mark.parametrize("change", (0.0, 10.0, 25.0, 59.0))
    def test_recovery_time(self, result, change):
        ref = ref_recovery_time(result, change, window=2.0)
        got = recovery_time(result, change, window=2.0)
        if ref is None:
            assert got is None
        else:
            assert got == pytest.approx(ref, abs=1e-9)

    @pytest.mark.parametrize("change", (0.0, 25.0, 49.5))
    def test_adjustment_speed(self, result, change):
        ref = ref_adjustment_speed(result, change, 50, sla=0.5)
        got = adjustment_speed(result, change, 50, sla=0.5)
        assert got == ref

    def test_segment_throughputs(self, result):
        for lo, hi in ((0.0, 25.0), (25.0, DURATION)):
            ref = ref_segment_throughputs(result, lo, hi, 1.0)
            got = _segment_throughputs(result, "x", lo, hi, 1.0)
            assert np.array_equal(ref, got)


class TestColumnarRepresentations:
    """The two construction paths must be observationally identical."""

    @pytest.mark.parametrize("result", RUNS, ids=RUN_IDS)
    def test_wire_round_trip_is_byte_identical(self, result):
        payload = result.to_json()
        assert RunResult.from_json(payload).to_json() == payload

    def test_columns_round_trip_records(self):
        result = random_run(7)
        rebuilt = RunResult(
            sut_name=result.sut_name,
            scenario_name=result.scenario_name,
            columns=result.columns,
            segments=result.segments,
        )
        assert rebuilt.to_dict()["queries"] == result.to_dict()["queries"]
        assert [q for q in rebuilt.queries] == [q for q in result.queries]

    def test_lazy_views_sorted(self):
        result = random_run(11)
        assert (np.diff(result.completions_sorted) >= 0).all()
        order = result.completion_order
        assert np.array_equal(
            result.latencies_sorted, result.columns.latencies[order]
        )
