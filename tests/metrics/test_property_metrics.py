"""Property-based tests on metric invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import QueryRecord, RunResult
from repro.metrics.adaptability import (
    area_between_systems,
    area_vs_ideal,
    cumulative_curve,
)
from repro.metrics.sla import adjustment_speed, latency_bands, multi_latency_bands


@st.composite
def run_results(draw, max_queries=120):
    """Random-but-valid RunResults: arrival <= start < completion."""
    n = draw(st.integers(min_value=1, max_value=max_queries))
    arrivals = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    queries = []
    for arrival in arrivals:
        queue_delay = draw(st.floats(min_value=0.0, max_value=5.0))
        service = draw(st.floats(min_value=1e-6, max_value=2.0))
        start = arrival + queue_delay
        queries.append(
            QueryRecord(
                arrival=arrival,
                start=start,
                completion=start + service,
                op="read",
                segment="a",
            )
        )
    horizon = max(60.0, max(q.completion for q in queries))
    return RunResult(
        sut_name="rand",
        scenario_name="rand",
        queries=queries,
        segments=[("a", 0.0, horizon)],
    )


class TestCumulativeCurveProperties:
    @given(result=run_results())
    @settings(max_examples=40, deadline=None)
    def test_monotone_and_bounded(self, result):
        times, cum = cumulative_curve(result, resolution=0.5)
        assert (np.diff(cum) >= 0).all()
        assert cum[0] >= 0
        assert cum[-1] == len(result.queries)

    @given(result=run_results())
    @settings(max_examples=40, deadline=None)
    def test_resolution_invariance_of_total(self, result):
        _, coarse = cumulative_curve(result, resolution=2.0)
        _, fine = cumulative_curve(result, resolution=0.25)
        assert coarse[-1] == fine[-1]


class TestAreaProperties:
    @given(result=run_results())
    @settings(max_examples=40, deadline=None)
    def test_area_between_self_is_zero(self, result):
        assert area_between_systems(result, result, resolution=0.5) == 0.0

    @given(a=run_results(), b=run_results())
    @settings(max_examples=30, deadline=None)
    def test_area_between_antisymmetric(self, a, b):
        ab = area_between_systems(a, b, resolution=0.5)
        ba = area_between_systems(b, a, resolution=0.5)
        assert ab == pytest.approx(-ba, abs=1e-6)

    @given(result=run_results())
    @settings(max_examples=30, deadline=None)
    def test_area_vs_ideal_finite(self, result):
        value = area_vs_ideal(result, resolution=0.5)
        assert np.isfinite(value)


class TestBandProperties:
    @given(result=run_results(), sla=st.floats(min_value=0.01, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_bands_conserve_queries(self, result, sla):
        bands = latency_bands(result, sla=sla, interval=1.0)
        assert sum(b.total for b in bands) == len(result.queries)

    @given(result=run_results(), sla=st.floats(min_value=0.01, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_violations_match_direct_count(self, result, sla):
        bands = latency_bands(result, sla=sla, interval=1.0)
        direct = sum(1 for q in result.queries if q.latency > sla)
        assert sum(b.violated for b in bands) == direct

    @given(result=run_results())
    @settings(max_examples=30, deadline=None)
    def test_multi_bands_conserve(self, result):
        rows = multi_latency_bands(result, thresholds=[0.1, 1.0], interval=1.0)
        total = sum(sum(counts) for _, counts in rows)
        assert total == len(result.queries)

    @given(
        result=run_results(),
        sla=st.floats(min_value=0.01, max_value=3.0),
        change=st.floats(min_value=0.0, max_value=40.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_adjustment_speed_nonnegative_monotone_in_n(self, result, sla, change):
        small = adjustment_speed(result, change, 5, sla)
        large = adjustment_speed(result, change, 50, sla)
        assert 0.0 <= small <= large
